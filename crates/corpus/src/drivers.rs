//! The sales-driver taxonomy — as a runtime registry, not a closed enum.
//!
//! §2 of the paper: "A sales driver represents a class of events whose
//! existence indicates a high propensity to buy products/services by the
//! companies associated with the events. … ETAP currently considers
//! three sales drivers, viz., mergers & acquisitions, change in
//! management, and revenue growth." The paper also anticipates that
//! "one may want to introduce new categories of sales drivers quite
//! frequently" — so drivers here are **data**: a [`DriverId`] is an
//! interned small integer with a stable string key, and new drivers are
//! registered at runtime (typically from a `DRIVERS v1` file, see the
//! `etap` crate) without recompiling anything.
//!
//! The three paper drivers are pre-registered at fixed ids 0, 1 and 2,
//! so every ordering the pipeline derives from `DriverId`'s `Ord`
//! (ranking tie-breaks, artifact layouts) is bit-identical to the old
//! closed-enum world when only the built-ins are in play.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock, RwLock};

/// An interned sales-driver identifier.
///
/// Copyable and totally ordered by interning index; the stable string
/// [`key`](Self::id) is what artifacts persist (interning order is a
/// per-process detail, the key is forever). The historical name
/// `SalesDriver` remains as a type alias.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DriverId(u16);

/// The historical name for a sales-driver identifier.
pub type SalesDriver = DriverId;

/// Corpus templates for a data-defined driver: how the synthetic web
/// writes trigger and distractor sentences for it. Placeholders
/// (`{company}`, `{company2}`, `{person}`, `{desig}`, `{money}`,
/// `{pct}`, `{date}`, `{place}`, `{quarter}`, `{year}`, `{product}`)
/// are filled by the corpus `NameGenerator`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriverTemplates {
    /// Trigger-sentence templates (genuine events; must mention
    /// `{company}` so the event has a company to rank).
    pub triggers: Vec<String>,
    /// Distractor-sentence templates (on-topic but not an event).
    pub distractors: Vec<String>,
    /// Headlines for trigger documents.
    pub headlines: Vec<String>,
    /// Headlines for distractor documents.
    pub distractor_headlines: Vec<String>,
}

struct DriverInfo {
    key: &'static str,
    name: &'static str,
    templates: Option<Arc<DriverTemplates>>,
}

struct Registry {
    infos: Vec<DriverInfo>,
    by_key: HashMap<&'static str, u16>,
}

impl Registry {
    fn with_builtins() -> Self {
        let mut r = Self {
            infos: Vec::new(),
            by_key: HashMap::new(),
        };
        for (key, name) in [
            ("mergers_acquisitions", "mergers & acquisitions"),
            ("change_in_management", "change in management"),
            ("revenue_growth", "revenue growth"),
        ] {
            let idx = r.infos.len() as u16;
            r.infos.push(DriverInfo {
                key,
                name,
                templates: None,
            });
            r.by_key.insert(key, idx);
        }
        r
    }
}

fn registry() -> &'static RwLock<Registry> {
    static REG: OnceLock<RwLock<Registry>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(Registry::with_builtins()))
}

fn read() -> std::sync::RwLockReadGuard<'static, Registry> {
    registry().read().unwrap_or_else(|e| e.into_inner())
}

fn write() -> std::sync::RwLockWriteGuard<'static, Registry> {
    registry().write().unwrap_or_else(|e| e.into_inner())
}

/// Hard cap on registered drivers: [`DriverSet`] is a 64-bit mask, and
/// sixty-four concurrent sales-driver categories is far beyond any
/// workload the pipeline targets.
pub const MAX_DRIVERS: usize = 64;

#[allow(non_upper_case_globals)]
impl DriverId {
    /// One company acquiring or merging with another (built-in, id 0).
    pub const MergersAcquisitions: DriverId = DriverId(0);
    /// A new executive joining / an executive leaving (built-in, id 1).
    pub const ChangeInManagement: DriverId = DriverId(1);
    /// A company reporting revenue / profit growth (built-in, id 2).
    pub const RevenueGrowth: DriverId = DriverId(2);

    /// The three built-in paper drivers, in canonical order.
    pub const ALL: [DriverId; 3] = [
        DriverId::MergersAcquisitions,
        DriverId::ChangeInManagement,
        DriverId::RevenueGrowth,
    ];

    /// Whether this is one of the three paper built-ins.
    #[must_use]
    pub fn is_builtin(self) -> bool {
        self.0 < 3
    }

    /// The interning index (0-based, registration order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Stable machine-readable key. This — not the interning index —
    /// is what goes into artifacts and URLs.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            DriverId::MergersAcquisitions => "mergers_acquisitions",
            DriverId::ChangeInManagement => "change_in_management",
            DriverId::RevenueGrowth => "revenue_growth",
            other => read()
                .infos
                .get(other.0 as usize)
                .map_or("unregistered", |i| i.key),
        }
    }

    /// Human-readable name (for the built-ins, as the paper writes it).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DriverId::MergersAcquisitions => "mergers & acquisitions",
            DriverId::ChangeInManagement => "change in management",
            DriverId::RevenueGrowth => "revenue growth",
            other => read()
                .infos
                .get(other.0 as usize)
                .map_or("unregistered", |i| i.name),
        }
    }

    /// Register a driver under `key` (display name `name`), returning
    /// its id. Registering an existing key is idempotent: the existing
    /// id is returned (the display name is left as first registered).
    ///
    /// # Errors
    /// [`RegistryFull`] once [`MAX_DRIVERS`] drivers exist.
    pub fn register(key: &str, name: &str) -> Result<DriverId, RegistryFull> {
        let mut reg = write();
        if let Some(&idx) = reg.by_key.get(key) {
            return Ok(DriverId(idx));
        }
        if reg.infos.len() >= MAX_DRIVERS {
            return Err(RegistryFull);
        }
        let key: &'static str = Box::leak(key.to_string().into_boxed_str());
        let name: &'static str = Box::leak(name.to_string().into_boxed_str());
        let idx = reg.infos.len() as u16;
        reg.infos.push(DriverInfo {
            key,
            name,
            templates: None,
        });
        reg.by_key.insert(key, idx);
        Ok(DriverId(idx))
    }

    /// Look up `key` (or a display name), registering it when unknown.
    /// This is the decode path for persisted artifacts: a warm start
    /// must be able to serve a book naming a driver whose spec file is
    /// not loaded, so the key interns with itself as display name.
    ///
    /// # Errors
    /// [`RegistryFull`] once [`MAX_DRIVERS`] drivers exist.
    pub fn intern(key: &str) -> Result<DriverId, RegistryFull> {
        if let Ok(d) = key.parse::<DriverId>() {
            return Ok(d);
        }
        DriverId::register(key, key)
    }

    /// Every registered driver, in id order (built-ins first).
    #[must_use]
    pub fn registered() -> Vec<DriverId> {
        (0..read().infos.len() as u16).map(DriverId).collect()
    }

    /// Attach corpus templates so the synthetic web can write trigger
    /// and distractor documents for this driver. Replaces any previous
    /// templates.
    pub fn set_templates(self, templates: DriverTemplates) {
        if let Some(info) = write().infos.get_mut(self.0 as usize) {
            info.templates = Some(Arc::new(templates));
        }
    }

    /// This driver's corpus templates, when registered with any.
    /// Built-ins return `None`: their generators are hand-written (and
    /// RNG-draw-exact) in the `templates` module.
    #[must_use]
    pub fn templates(self) -> Option<Arc<DriverTemplates>> {
        read()
            .infos
            .get(self.0 as usize)
            .and_then(|i| i.templates.clone())
    }
}

impl fmt::Display for DriverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DriverId {
    type Err = UnknownDriver;

    /// Strict lookup by key or display name — never registers. Request
    /// paths (URLs, CLI flags) go through this so an unknown key is a
    /// clean error (a 404, not a new registry entry).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let reg = read();
        if let Some(&idx) = reg.by_key.get(s) {
            return Ok(DriverId(idx));
        }
        reg.infos
            .iter()
            .position(|i| i.name == s)
            .map(|i| DriverId(i as u16))
            .ok_or_else(|| UnknownDriver(s.to_string()))
    }
}

/// Error for an unrecognized sales-driver name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDriver(pub String);

impl fmt::Display for UnknownDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown sales driver: {:?}", self.0)
    }
}

impl std::error::Error for UnknownDriver {}

/// Error when the driver registry has reached [`MAX_DRIVERS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryFull;

impl fmt::Display for RegistryFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "driver registry full ({MAX_DRIVERS} drivers)")
    }
}

impl std::error::Error for RegistryFull {}

/// A copyable set of drivers (a bitmask over interning indices), used
/// by corpus configs to say *which* drivers a synthetic web writes
/// trigger/distractor documents for. Defaults to the three built-ins,
/// keeping the default document stream byte-identical to the
/// closed-enum era.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverSet {
    bits: u64,
}

impl DriverSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        Self { bits: 0 }
    }

    /// The three built-in paper drivers.
    #[must_use]
    pub const fn builtin() -> Self {
        Self { bits: 0b111 }
    }

    /// Every driver currently registered.
    #[must_use]
    pub fn all_registered() -> Self {
        let mut s = Self::empty();
        for d in DriverId::registered() {
            s.insert(d);
        }
        s
    }

    /// The set holding exactly `drivers`.
    #[must_use]
    pub fn from_drivers(drivers: &[DriverId]) -> Self {
        let mut s = Self::empty();
        for d in drivers {
            s.insert(*d);
        }
        s
    }

    /// Add one driver.
    pub fn insert(&mut self, d: DriverId) {
        self.bits |= 1u64 << (d.0 as u64 % 64);
    }

    /// Whether `d` is in the set.
    #[must_use]
    pub fn contains(self, d: DriverId) -> bool {
        self.bits & (1u64 << (d.0 as u64 % 64)) != 0
    }

    /// Member count.
    #[must_use]
    pub fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Members in ascending id order (the order every corpus RNG draw
    /// sequence iterates, so it must be deterministic).
    pub fn iter(self) -> impl Iterator<Item = DriverId> {
        (0..64u16).filter(move |i| self.bits & (1u64 << i) != 0).map(DriverId)
    }
}

impl Default for DriverSet {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_drivers() {
        assert_eq!(SalesDriver::ALL.len(), 3);
        for d in SalesDriver::ALL {
            assert!(d.is_builtin());
        }
    }

    #[test]
    fn ids_parse_back() {
        for d in SalesDriver::ALL {
            assert_eq!(d.id().parse::<SalesDriver>().unwrap(), d);
            assert_eq!(d.name().parse::<SalesDriver>().unwrap(), d);
        }
        assert!("steel futures".parse::<SalesDriver>().is_err());
    }

    #[test]
    fn display_matches_paper() {
        assert_eq!(
            SalesDriver::MergersAcquisitions.to_string(),
            "mergers & acquisitions"
        );
        assert_eq!(
            SalesDriver::ChangeInManagement.to_string(),
            "change in management"
        );
    }

    #[test]
    fn register_is_idempotent_and_parses_back() {
        let a = DriverId::register("test_reg_widgets", "widget launches").unwrap();
        let b = DriverId::register("test_reg_widgets", "other name").unwrap();
        assert_eq!(a, b);
        assert!(!a.is_builtin());
        assert_eq!(a.id(), "test_reg_widgets");
        assert_eq!(a.name(), "widget launches");
        assert_eq!("test_reg_widgets".parse::<DriverId>().unwrap(), a);
    }

    #[test]
    fn intern_registers_unknown_keys() {
        assert!("test_intern_k".parse::<DriverId>().is_err());
        let d = DriverId::intern("test_intern_k").unwrap();
        assert_eq!(d.name(), "test_intern_k");
        assert_eq!(DriverId::intern("test_intern_k").unwrap(), d);
        // Interning a builtin key returns the builtin.
        assert_eq!(
            DriverId::intern("revenue_growth").unwrap(),
            DriverId::RevenueGrowth
        );
    }

    #[test]
    fn templates_attach_and_fetch() {
        let d = DriverId::register("test_tmpl_drv", "template test").unwrap();
        assert!(d.templates().is_none());
        d.set_templates(DriverTemplates {
            triggers: vec!["{company} did a thing".into()],
            ..DriverTemplates::default()
        });
        let t = d.templates().expect("templates");
        assert_eq!(t.triggers.len(), 1);
        // Builtins have no data templates (hand-written generators).
        assert!(DriverId::RevenueGrowth.templates().is_none());
    }

    #[test]
    fn driver_set_defaults_to_builtins() {
        let s = DriverSet::default();
        assert_eq!(s.len(), 3);
        let members: Vec<DriverId> = s.iter().collect();
        assert_eq!(members, SalesDriver::ALL.to_vec());
        assert!(s.contains(DriverId::RevenueGrowth));
    }

    #[test]
    fn driver_set_insert_iterates_in_id_order() {
        let d = DriverId::register("test_set_member", "set member").unwrap();
        let mut s = DriverSet::empty();
        s.insert(d);
        s.insert(DriverId::MergersAcquisitions);
        let members: Vec<DriverId> = s.iter().collect();
        assert_eq!(members, vec![DriverId::MergersAcquisitions, d]);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(DriverId::RevenueGrowth));
    }
}
