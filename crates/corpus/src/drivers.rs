//! The sales-driver taxonomy.
//!
//! §2 of the paper: "A sales driver represents a class of events whose
//! existence indicates a high propensity to buy products/services by the
//! companies associated with the events. … ETAP currently considers
//! three sales drivers, viz., mergers & acquisitions, change in
//! management, and revenue growth."

use std::fmt;
use std::str::FromStr;

/// The three sales drivers ETAP ships with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SalesDriver {
    /// One company acquiring or merging with another.
    MergersAcquisitions,
    /// A new executive joining / an executive leaving a company.
    ChangeInManagement,
    /// A company reporting revenue / profit growth (or decline).
    RevenueGrowth,
}

impl SalesDriver {
    /// All built-in drivers.
    pub const ALL: [SalesDriver; 3] = [
        SalesDriver::MergersAcquisitions,
        SalesDriver::ChangeInManagement,
        SalesDriver::RevenueGrowth,
    ];

    /// Stable machine-readable identifier.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            SalesDriver::MergersAcquisitions => "mergers_acquisitions",
            SalesDriver::ChangeInManagement => "change_in_management",
            SalesDriver::RevenueGrowth => "revenue_growth",
        }
    }

    /// Human-readable name as the paper writes it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SalesDriver::MergersAcquisitions => "mergers & acquisitions",
            SalesDriver::ChangeInManagement => "change in management",
            SalesDriver::RevenueGrowth => "revenue growth",
        }
    }
}

impl fmt::Display for SalesDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SalesDriver {
    type Err = UnknownDriver;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SalesDriver::ALL
            .iter()
            .copied()
            .find(|d| d.id() == s || d.name() == s)
            .ok_or_else(|| UnknownDriver(s.to_string()))
    }
}

/// Error for an unrecognized sales-driver name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownDriver(pub String);

impl fmt::Display for UnknownDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown sales driver: {:?}", self.0)
    }
}

impl std::error::Error for UnknownDriver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_drivers() {
        assert_eq!(SalesDriver::ALL.len(), 3);
    }

    #[test]
    fn ids_parse_back() {
        for d in SalesDriver::ALL {
            assert_eq!(d.id().parse::<SalesDriver>().unwrap(), d);
            assert_eq!(d.name().parse::<SalesDriver>().unwrap(), d);
        }
        assert!("steel futures".parse::<SalesDriver>().is_err());
    }

    #[test]
    fn display_matches_paper() {
        assert_eq!(
            SalesDriver::MergersAcquisitions.to_string(),
            "mergers & acquisitions"
        );
        assert_eq!(
            SalesDriver::ChangeInManagement.to_string(),
            "change in management"
        );
    }
}
