//! Property tests: the gazetteer byte-trie automaton must report exactly
//! the matches of the reference `HashSet<String>` membership model it
//! replaced (build the space-joined phrase per candidate length, ask the
//! set). Random vocabularies are drawn from a tiny alphabet so entries
//! share prefixes aggressively — the regime where an automaton bug
//! (wrong terminal flag, premature walk death, missed branch) shows up.

use etap_annotate::gazetteer::Gazetteer;
use etap_runtime::Rng;
use std::collections::HashSet;

/// Two-letter alphabet + short words ⇒ dense prefix overlap.
fn arb_word(rng: &mut Rng) -> String {
    let len = rng.gen_range(1..5);
    (0..len)
        .map(|_| if rng.gen_bool(0.5) { 'a' } else { 'b' })
        .collect()
}

fn arb_phrase(rng: &mut Rng, max_words: usize) -> Vec<String> {
    let n = rng.gen_range(1..max_words + 1);
    (0..n).map(|_| arb_word(rng)).collect()
}

/// The reference model: exact phrase membership in a set of strings.
struct SetGazetteer {
    entries: HashSet<String>,
    max_len: usize,
}

impl SetGazetteer {
    fn build(phrases: &[Vec<String>]) -> Self {
        let mut entries = HashSet::new();
        let mut max_len = 0;
        for p in phrases {
            entries.insert(p.join(" "));
            max_len = max_len.max(p.len());
        }
        Self { entries, max_len }
    }

    /// All match lengths starting at `tokens[start]`, old-style: join
    /// the first `k` tokens and ask the set, for every k.
    fn matches_at(&self, tokens: &[String], start: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for k in 1..=self.max_len.min(tokens.len() - start) {
            if self.entries.contains(&tokens[start..start + k].join(" ")) {
                out.push(k);
            }
        }
        out
    }
}

/// The production model: incremental trie walk with early exit on death
/// (sound because every longer entry extends a live prefix).
fn trie_matches_at(gaz: &Gazetteer, tokens: &[String], start: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut walk = gaz.walk();
    for k in 1..=gaz.max_len().min(tokens.len() - start) {
        if k > 1 && !walk.sep() {
            break;
        }
        if !walk.token(&tokens[start + k - 1]) {
            break;
        }
        if walk.matched() {
            out.push(k);
        }
    }
    out
}

#[test]
fn trie_walk_matches_set_membership_on_random_vocabularies() {
    let mut rng = Rng::seed_from_u64(0x676172); // "gaz"
    for _ in 0..300 {
        let n_entries = rng.gen_range(1..30);
        let phrases: Vec<Vec<String>> = (0..n_entries).map(|_| arb_phrase(&mut rng, 4)).collect();

        let set = SetGazetteer::build(&phrases);
        let mut trie = Gazetteer::default();
        for p in &phrases {
            trie.insert(&p.join(" "));
        }
        assert_eq!(trie.max_len(), set.max_len);
        assert_eq!(trie.len(), set.entries.len(), "duplicate entries collapse");

        // Query with a random token stream (mix of vocab words and
        // noise) from every start position.
        let tokens: Vec<String> = (0..rng.gen_range(1..25))
            .map(|_| {
                if rng.gen_bool(0.2) {
                    "zz".to_string() // guaranteed non-vocab
                } else {
                    arb_word(&mut rng)
                }
            })
            .collect();
        for start in 0..tokens.len() {
            assert_eq!(
                trie_matches_at(&trie, &tokens, start),
                set.matches_at(&tokens, start),
                "entries {phrases:?}, tokens {tokens:?}, start {start}"
            );
        }
    }
}

#[test]
fn contains_agrees_with_set_membership() {
    let mut rng = Rng::seed_from_u64(0xC0117A);
    for _ in 0..200 {
        let phrases: Vec<Vec<String>> = (0..rng.gen_range(1..20))
            .map(|_| arb_phrase(&mut rng, 3))
            .collect();
        let set = SetGazetteer::build(&phrases);
        let trie = {
            let mut g = Gazetteer::default();
            for p in &phrases {
                g.insert(&p.join(" "));
            }
            g
        };
        // Probe with fresh random phrases (some will collide with
        // entries, most won't) plus every actual entry.
        for p in &phrases {
            assert!(trie.contains(&p.join(" ")));
        }
        for _ in 0..50 {
            let probe = arb_phrase(&mut rng, 4).join(" ");
            assert_eq!(
                trie.contains(&probe),
                set.entries.contains(&probe),
                "probe {probe:?}"
            );
        }
    }
}

#[test]
fn folded_walk_matches_ascii_lowercase_fold() {
    // `token_folded` must behave exactly like lowercasing the token
    // first: mixed-case queries against lowercase entries.
    let mut rng = Rng::seed_from_u64(0xF01D);
    let entries = ["ab", "ab ba", "aab", "b", "b a b"];
    let mut gaz = Gazetteer::default();
    for e in &entries {
        gaz.insert(e);
    }
    let set: HashSet<&str> = entries.iter().copied().collect();
    let mut scratch = String::new();
    for _ in 0..2000 {
        let words: Vec<String> = (0..rng.gen_range(1..4))
            .map(|_| {
                arb_word(&mut rng)
                    .chars()
                    .map(|c| {
                        if rng.gen_bool(0.5) {
                            c.to_ascii_uppercase()
                        } else {
                            c
                        }
                    })
                    .collect()
            })
            .collect();
        let mut walk = gaz.walk();
        let mut matched_lens = Vec::new();
        for (i, w) in words.iter().enumerate() {
            if i > 0 && !walk.sep() {
                break;
            }
            if !walk.token_folded(w, &mut scratch) {
                break;
            }
            if walk.matched() {
                matched_lens.push(i + 1);
            }
        }
        for k in 1..=words.len() {
            let lowered = words[..k]
                .iter()
                .map(|w| w.to_lowercase())
                .collect::<Vec<_>>()
                .join(" ");
            assert_eq!(
                matched_lens.contains(&k),
                set.contains(lowered.as_str()),
                "words {words:?}, k {k}"
            );
        }
    }
}
