//! Steady-state allocation audit for the annotate hot path.
//!
//! This test binary installs a counting `#[global_allocator]` — a thin
//! wrapper over [`System`] that increments an atomic on every `alloc` /
//! `realloc` — and asserts the zero-allocation contract of
//! [`Annotator::annotate_with`]: once an [`AnnotateScratch`] is warm and
//! the previous snippet's output has been dropped, annotating a snippet
//! performs **zero** heap allocations (tokenizer spans, NER entity spans,
//! POS tags and the output buffer are all recycled through the scratch,
//! and the gazetteer automaton walk builds no key strings).
//!
//! The counter lives in its own integration-test binary so the wrapper
//! never touches production builds or the other test binaries; it is the
//! only test here, so no concurrent test thread can pollute the count.
//! (`etap-annotate` itself stays `#![forbid(unsafe_code)]` — the
//! `unsafe impl GlobalAlloc` below is local to this test crate.)

use etap_annotate::{AnnotateScratch, Annotator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation served since process start.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A varied workload: entities of most categories, multi-word gazetteer
/// matches, numbers/ordinals, non-ASCII text and plain prose, so the
/// steady-state claim covers every annotator sub-path, not just one
/// lucky snippet shape.
const TEXTS: &[&str] = &[
    "IBM acquired Daksh for $160 million in April 2004.",
    "Oracle gained 5.3 percent on Monday, said Mr. James Wilson.",
    "Société Générale opened offices in New York City last year.",
    "The company hired 1,200 employees in the fourth quarter of 2005.",
    "Prices rose 3 % at 10:30 on the 21st; the CEO announced a merger.",
    "Heavy rain is expected across the region this weekend.",
];

#[test]
fn annotate_with_is_allocation_free_after_warmup() {
    let annotator = Annotator::new();
    let mut scratch = AnnotateScratch::new();

    // Warm-up: grow every scratch buffer (and the arena's snippet
    // buffer) to the workload's high-water mark.
    for _ in 0..3 {
        for text in TEXTS {
            let snip = annotator.annotate_with(text, &mut scratch);
            assert!(!snip.is_empty());
            // `snip` drops here, so the arena recycles its buffer
            // in place on the next call.
        }
    }

    let before = allocations();
    for _ in 0..10 {
        for text in TEXTS {
            let snip = annotator.annotate_with(text, &mut scratch);
            std::hint::black_box(&snip);
        }
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "annotate_with allocated {} times over {} warm snippets",
        after - before,
        10 * TEXTS.len()
    );
}

#[test]
fn retained_snippets_spill_instead_of_corrupting() {
    // The inverse contract: when outputs are *kept*, the arena must
    // spill to fresh buffers (allocating is expected and correct) and
    // every retained snippet must stay intact.
    let annotator = Annotator::new();
    let mut scratch = AnnotateScratch::new();
    let kept: Vec<_> = TEXTS
        .iter()
        .map(|t| annotator.annotate_with(t, &mut scratch))
        .collect();
    for (snip, text) in kept.iter().zip(TEXTS) {
        assert_eq!(snip, &annotator.annotate(text), "retained snippet mutated");
    }
}
