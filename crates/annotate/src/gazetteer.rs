//! Built-in gazetteers for the named-entity recognizer.
//!
//! The paper's NER was trained on proprietary IBM resources; our stand-in
//! uses curated word lists. Lists are intentionally *incomplete* — an NER
//! that recognized every synthetic entity perfectly would hide the error
//! propagation the paper discusses in §6 ("wrong annotation of company
//! and person names leads to incorrect trigger events"). Unknown
//! capitalised words are resolved by contextual rules in
//! [`crate::ner`], which is where realistic mistakes creep in.
//!
//! All lookups are case-sensitive exact matches against the canonical
//! casing stored here, except designations and units which are matched
//! case-insensitively.
//!
//! ## Storage: a byte trie, not a `HashSet<String>`
//!
//! Entries live in a single flat byte trie (`Vec` of nodes, sorted edge
//! lists), built once at load. Multi-word entries are stored with their
//! single-space separators, so the NER matcher can walk a candidate token
//! run **incrementally** — one [`Walk`] fed token bytes plus separators —
//! and read off every matching prefix length in one pass, without ever
//! materialising a `String` key per probe. When the walk dies at some
//! byte, no longer entry can match either (all longer keys share the
//! prefix), which is exactly the early-exit the old per-length
//! `HashSet::contains` loop could not express.

use etap_text::lower_into;

/// One trie node: sorted `(byte, child)` edges plus a terminal flag.
#[derive(Debug, Clone, Default)]
struct Node {
    edges: Vec<(u8, u32)>,
    terminal: bool,
}

/// A set of known (possibly multi-word) names, stored as a byte trie
/// keyed on the space-joined token sequence.
#[derive(Debug, Clone)]
pub struct Gazetteer {
    nodes: Vec<Node>,
    /// Number of distinct entries (terminal nodes).
    len: usize,
    /// Longest entry length in tokens (bounds the matcher's lookahead).
    max_len: usize,
}

impl Default for Gazetteer {
    fn default() -> Self {
        Gazetteer {
            nodes: vec![Node::default()],
            len: 0,
            max_len: 0,
        }
    }
}

impl Gazetteer {
    /// Build a gazetteer from a list of entries; multi-word entries are
    /// written with single spaces.
    #[must_use]
    pub fn from_entries(entries: &[&str]) -> Self {
        let mut g = Gazetteer::default();
        for e in entries {
            g.insert(e);
        }
        g
    }

    /// Insert an entry (idempotent).
    pub fn insert(&mut self, entry: &str) {
        let n = entry.split(' ').count();
        self.max_len = self.max_len.max(n);
        let mut node = 0u32;
        for b in entry.bytes() {
            node = match self.step(node, b) {
                Some(next) => next,
                None => {
                    let next = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    let edges = &mut self.nodes[node as usize].edges;
                    let pos = edges.partition_point(|&(eb, _)| eb < b);
                    edges.insert(pos, (b, next));
                    next
                }
            };
        }
        let end = &mut self.nodes[node as usize].terminal;
        if !*end {
            *end = true;
            self.len += 1;
        }
    }

    /// Follow the edge labelled `b` out of `node`, if present.
    #[inline]
    fn step(&self, node: u32, b: u8) -> Option<u32> {
        let edges = &self.nodes[node as usize].edges;
        // Edge lists are tiny (branching factor of curated name lists);
        // a linear scan over the sorted pairs beats binary search here.
        for &(eb, next) in edges {
            if eb == b {
                return Some(next);
            }
            if eb > b {
                return None;
            }
        }
        None
    }

    /// Does the gazetteer contain this exact (possibly multi-word) entry?
    #[must_use]
    pub fn contains(&self, entry: &str) -> bool {
        let mut node = 0u32;
        for b in entry.bytes() {
            match self.step(node, b) {
                Some(next) => node = next,
                None => return false,
            }
        }
        self.nodes[node as usize].terminal
    }

    /// Start an incremental walk from the trie root. Feed it tokens (and
    /// separators between them) to probe entries prefix-by-prefix.
    #[must_use]
    pub fn walk(&self) -> Walk<'_> {
        Walk {
            gaz: self,
            node: Some(0),
        }
    }

    /// Longest entry, in tokens.
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the gazetteer has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An incremental matcher state over a [`Gazetteer`] trie.
///
/// The NER feeds one candidate token run through a walk: `token`,
/// `sep`, `token`, … After each token, [`Walk::matched`] says whether
/// the bytes fed so far form a complete entry. Once the walk leaves the
/// trie it stays dead (every `feed` returns `false`), letting callers
/// break out of the lookahead loop early.
#[derive(Debug, Clone)]
pub struct Walk<'a> {
    gaz: &'a Gazetteer,
    node: Option<u32>,
}

impl Walk<'_> {
    /// Feed the single-space separator between tokens.
    pub fn sep(&mut self) -> bool {
        self.feed_byte(b' ')
    }

    /// Feed a token verbatim (case-sensitive gazetteers).
    pub fn token(&mut self, text: &str) -> bool {
        text.bytes().all(|b| self.feed_byte(b))
    }

    /// Feed a token lowercased (case-insensitive gazetteers whose entries
    /// are stored lowercase). ASCII folds byte-by-byte with no
    /// allocation; non-ASCII tokens take the full Unicode lowering
    /// through the caller's scratch buffer.
    pub fn token_folded(&mut self, text: &str, scratch: &mut String) -> bool {
        if text.is_ascii() {
            text.bytes().all(|b| self.feed_byte(b.to_ascii_lowercase()))
        } else {
            lower_into(text, scratch);
            scratch.bytes().all(|b| self.feed_byte(b))
        }
    }

    /// Whether the bytes fed so far spell a complete entry.
    #[must_use]
    pub fn matched(&self) -> bool {
        self.node
            .is_some_and(|n| self.gaz.nodes[n as usize].terminal)
    }

    /// Whether the walk is still inside the trie.
    #[must_use]
    pub fn alive(&self) -> bool {
        self.node.is_some()
    }

    #[inline]
    fn feed_byte(&mut self, b: u8) -> bool {
        self.node = self.node.and_then(|n| self.gaz.step(n, b));
        self.node.is_some()
    }
}

/// Well-known company/organization names (single- and multi-word).
pub const ORGANIZATIONS: &[&str] = &[
    "IBM",
    "Microsoft",
    "Oracle",
    "Google",
    "Intel",
    "Cisco",
    "Dell",
    "Apple",
    "Amazon",
    "Sony",
    "Samsung",
    "Nokia",
    "Motorola",
    "Siemens",
    "Philips",
    "Toshiba",
    "Fujitsu",
    "Hitachi",
    "Infosys",
    "Wipro",
    "Daksh",
    "Satyam",
    "Accenture",
    "Deloitte",
    "Gartner",
    "Forrester",
    "Boeing",
    "Airbus",
    "Lockheed",
    "Raytheon",
    "Honeywell",
    "Caterpillar",
    "Monsanto",
    "Pfizer",
    "Merck",
    "Novartis",
    "Roche",
    "GlaxoSmithKline",
    "AstraZeneca",
    "Unilever",
    "Nestle",
    "Danone",
    "Coors",
    "Molson",
    "Heineken",
    "Diageo",
    "Pepsico",
    "Starbucks",
    "Walmart",
    "Target",
    "Costco",
    "Tesco",
    "Carrefour",
    "Citigroup",
    "Barclays",
    "HSBC",
    "UBS",
    "Wachovia",
    "Vodafone",
    "Verizon",
    "Sprint",
    "Comcast",
    "Disney",
    "Viacom",
    "Monster",
    "Jobsahead",
    "Ebay",
    "Yahoo",
    "Netscape",
    "Adobe",
    "Autodesk",
    "Borland",
    "Novell",
    "Compaq",
    "Gateway",
    "Lenovo",
    "Acer",
    "Xerox",
    "Kodak",
    "Polaroid",
    "Halliburton",
    "Exxon",
    "Chevron",
    "Texaco",
    "Shell",
    "Enron",
    "Dynegy",
    "Duke Energy",
    "General Electric",
    "General Motors",
    "Ford Motor",
    "Daimler Chrysler",
    "United Airlines",
    "Delta Air Lines",
    "American Express",
    "Goldman Sachs",
    "Morgan Stanley",
    "Merrill Lynch",
    "Lehman Brothers",
    "Bear Stearns",
    "Bank of America",
    "Wells Fargo",
    "JP Morgan",
    "J. P. Morgan",
    "Deutsche Bank",
    "Credit Suisse",
    "Societe Generale",
    "BNP Paribas",
    "Standard Chartered",
    "Tata Consultancy",
    "Tata Motors",
    "Reliance Industries",
    "Bharti Airtel",
    "Hindustan Lever",
    "Sun Microsystems",
    "Silicon Graphics",
    "Texas Instruments",
    "Advanced Micro Devices",
    "Hewlett Packard",
    "Procter Gamble",
    "Johnson Johnson",
    "Eli Lilly",
    "Bristol Myers",
    "Red Hat",
    "Veritas Software",
    "Siebel Systems",
    "PeopleSoft",
    "BEA Systems",
    "Sybase",
    "Business Objects",
    "Cognos",
    "Hyperion",
    "Informatica",
    "Tibco",
    "Webmethods",
];

/// Suffix words that mark the preceding capitalised run as a company.
pub const ORG_SUFFIXES: &[&str] = &[
    "Inc",
    "Inc.",
    "Corp",
    "Corp.",
    "Co",
    "Co.",
    "Ltd",
    "Ltd.",
    "PLC",
    "Plc",
    "LLC",
    "LLP",
    "AG",
    "SA",
    "NV",
    "GmbH",
    "Group",
    "Holdings",
    "Industries",
    "Systems",
    "Technologies",
    "Solutions",
    "Partners",
    "Ventures",
    "Capital",
    "Bancorp",
    "Bank",
    "Airlines",
    "Motors",
    "Energy",
    "Pharmaceuticals",
    "Communications",
    "Networks",
    "Software",
    "Semiconductor",
    "Enterprises",
    "International",
    "Worldwide",
    "Consulting",
    "Labs",
    "Laboratories",
];

/// Common given names (male and female, skewed to business news of the
/// paper's era).
pub const GIVEN_NAMES: &[&str] = &[
    "James",
    "John",
    "Robert",
    "Michael",
    "William",
    "David",
    "Richard",
    "Charles",
    "Joseph",
    "Thomas",
    "Christopher",
    "Daniel",
    "Paul",
    "Mark",
    "Donald",
    "George",
    "Kenneth",
    "Steven",
    "Edward",
    "Brian",
    "Ronald",
    "Anthony",
    "Kevin",
    "Jason",
    "Matthew",
    "Gary",
    "Timothy",
    "Jose",
    "Larry",
    "Jeffrey",
    "Frank",
    "Scott",
    "Eric",
    "Stephen",
    "Andrew",
    "Raymond",
    "Gregory",
    "Joshua",
    "Jerry",
    "Dennis",
    "Walter",
    "Patrick",
    "Peter",
    "Harold",
    "Douglas",
    "Henry",
    "Carl",
    "Arthur",
    "Ryan",
    "Roger",
    "Mary",
    "Patricia",
    "Linda",
    "Barbara",
    "Elizabeth",
    "Jennifer",
    "Maria",
    "Susan",
    "Margaret",
    "Dorothy",
    "Lisa",
    "Nancy",
    "Karen",
    "Betty",
    "Helen",
    "Sandra",
    "Donna",
    "Carol",
    "Ruth",
    "Sharon",
    "Michelle",
    "Laura",
    "Sarah",
    "Kimberly",
    "Deborah",
    "Jessica",
    "Shirley",
    "Cynthia",
    "Angela",
    "Melissa",
    "Brenda",
    "Amy",
    "Anna",
    "Rebecca",
    "Virginia",
    "Kathleen",
    "Pamela",
    "Martha",
    "Debra",
    "Amanda",
    "Stephanie",
    "Carolyn",
    "Christine",
    "Marie",
    "Janet",
    "Catherine",
    "Frances",
    "Ann",
    "Joyce",
    "Diane",
    "Alice",
    "Jane",
    "Ganesh",
    "Sachindra",
    "Sumit",
    "Raghu",
    "Sreeram",
    "Rajesh",
    "Anil",
    "Sunil",
    "Vijay",
    "Arun",
    "Ravi",
    "Sanjay",
    "Ramesh",
    "Krishna",
    "Lakshmi",
    "Priya",
    "Deepa",
    "Kavita",
    "Meera",
    "Satoshi",
    "Hiroshi",
    "Kenji",
    "Yuki",
    "Wei",
    "Li",
    "Ming",
    "Jun",
    "Hans",
    "Klaus",
    "Jurgen",
    "Pierre",
    "Jean",
    "Marc",
    "Luis",
    "Carlos",
    "Miguel",
    "Antonio",
    "Giovanni",
    "Marco",
    "Paolo",
];

/// Common surnames.
pub const SURNAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Jones",
    "Brown",
    "Davis",
    "Miller",
    "Wilson",
    "Moore",
    "Taylor",
    "Anderson",
    "Andersen",
    "Thomas",
    "Jackson",
    "White",
    "Harris",
    "Martin",
    "Thompson",
    "Garcia",
    "Martinez",
    "Robinson",
    "Clark",
    "Rodriguez",
    "Lewis",
    "Lee",
    "Walker",
    "Hall",
    "Allen",
    "Young",
    "Hernandez",
    "King",
    "Wright",
    "Lopez",
    "Hill",
    "Scott",
    "Green",
    "Adams",
    "Baker",
    "Gonzalez",
    "Nelson",
    "Carter",
    "Mitchell",
    "Perez",
    "Roberts",
    "Turner",
    "Phillips",
    "Campbell",
    "Parker",
    "Evans",
    "Edwards",
    "Collins",
    "Stewart",
    "Sanchez",
    "Morris",
    "Rogers",
    "Reed",
    "Cook",
    "Morgan",
    "Bell",
    "Murphy",
    "Bailey",
    "Rivera",
    "Cooper",
    "Richardson",
    "Cox",
    "Howard",
    "Ward",
    "Torres",
    "Peterson",
    "Gray",
    "Ramirez",
    "Watson",
    "Brooks",
    "Kelly",
    "Sanders",
    "Price",
    "Bennett",
    "Wood",
    "Barnes",
    "Ross",
    "Henderson",
    "Coleman",
    "Jenkins",
    "Perry",
    "Powell",
    "Long",
    "Patterson",
    "Hughes",
    "Flores",
    "Washington",
    "Butler",
    "Simmons",
    "Foster",
    "Gonzales",
    "Bryant",
    "Alexander",
    "Russell",
    "Griffin",
    "Diaz",
    "Hayes",
    "Palmisano",
    "Gerstner",
    "Welch",
    "Immelt",
    "Ballmer",
    "Gates",
    "Ellison",
    "Chambers",
    "Fiorina",
    "Hurd",
    "Dell",
    "Grove",
    "Barrett",
    "Otellini",
    "Murthy",
    "Premji",
    "Nilekani",
    "Ramakrishnan",
    "Joshi",
    "Negi",
    "Krishnapuram",
    "Balakrishnan",
    "Gupta",
    "Sharma",
    "Patel",
    "Singh",
    "Kumar",
    "Rao",
    "Reddy",
    "Iyer",
    "Menon",
    "Nakamura",
    "Tanaka",
    "Suzuki",
    "Yamamoto",
    "Schmidt",
    "Mueller",
    "Weber",
    "Fischer",
    "Dubois",
    "Moreau",
    "Rossi",
    "Ferrari",
    "Bianchi",
];

/// Place names (cities, countries, regions in business news).
pub const PLACES: &[&str] = &[
    "Washington",
    "New York",
    "London",
    "Paris",
    "Tokyo",
    "Beijing",
    "Shanghai",
    "Hong Kong",
    "Singapore",
    "Sydney",
    "Toronto",
    "Chicago",
    "Boston",
    "Seattle",
    "Austin",
    "Dallas",
    "Houston",
    "Atlanta",
    "Denver",
    "Phoenix",
    "Detroit",
    "Philadelphia",
    "San Francisco",
    "San Jose",
    "Los Angeles",
    "San Diego",
    "New Delhi",
    "Mumbai",
    "Bangalore",
    "Chennai",
    "Hyderabad",
    "Pune",
    "Kolkata",
    "Gurgaon",
    "Noida",
    "Frankfurt",
    "Munich",
    "Berlin",
    "Zurich",
    "Geneva",
    "Amsterdam",
    "Brussels",
    "Madrid",
    "Barcelona",
    "Milan",
    "Rome",
    "Stockholm",
    "Helsinki",
    "Oslo",
    "Copenhagen",
    "Dublin",
    "Edinburgh",
    "Moscow",
    "Warsaw",
    "Prague",
    "Vienna",
    "Budapest",
    "Istanbul",
    "Dubai",
    "Tel Aviv",
    "Johannesburg",
    "Cairo",
    "Lagos",
    "Nairobi",
    "Sao Paulo",
    "Mexico City",
    "Buenos Aires",
    "Santiago",
    "Lima",
    "Seoul",
    "Taipei",
    "Osaka",
    "Manila",
    "Jakarta",
    "Bangkok",
    "Kuala Lumpur",
    "Melbourne",
    "Auckland",
    "Wellington",
    "America",
    "England",
    "France",
    "Germany",
    "Japan",
    "China",
    "India",
    "Brazil",
    "Russia",
    "Canada",
    "Australia",
    "Italy",
    "Spain",
    "Mexico",
    "Korea",
    "Taiwan",
    "Ireland",
    "Israel",
    "Switzerland",
    "Sweden",
    "Norway",
    "Denmark",
    "Finland",
    "Netherlands",
    "Belgium",
    "Austria",
    "Poland",
    "Turkey",
    "Egypt",
    "Argentina",
    "Chile",
    "Europe",
    "Asia",
    "Africa",
    "New Zealand",
    "United States",
    "United Kingdom",
    "Silicon Valley",
    "Wall Street",
    "Bangalore South",
    "California",
    "Texas",
    "Virginia",
    "Massachusetts",
    "Connecticut",
    "Delaware",
    "Nevada",
    "Oregon",
    "Colorado",
];

/// Job designations, matched case-insensitively (the trigger literature
/// writes both "CEO" and "Chief Executive Officer").
pub const DESIGNATIONS: &[&str] = &[
    "ceo",
    "cfo",
    "cto",
    "coo",
    "cio",
    "cmo",
    "chairman",
    "chairwoman",
    "chairperson",
    "president",
    "director",
    "manager",
    "officer",
    "executive",
    "founder",
    "cofounder",
    "co-founder",
    "partner",
    "principal",
    "treasurer",
    "secretary",
    "controller",
    "chief",
    "head",
    "leader",
    "supervisor",
    "administrator",
    "trustee",
    "governor",
    "dean",
    "provost",
    "chancellor",
    "vice president",
    "vice chairman",
    "senior vice president",
    "executive vice president",
    "managing director",
    "general manager",
    "deputy director",
    "chief executive",
    "chief executive officer",
    "chief financial officer",
    "chief technology officer",
    "chief operating officer",
    "chief information officer",
    "chief marketing officer",
    "board member",
    "general counsel",
];

/// Product names (technology products circa the paper).
pub const PRODUCTS: &[&str] = &[
    "ThinkPad",
    "PowerPC",
    "WebSphere",
    "Lotus Notes",
    "Windows",
    "Office",
    "Excel",
    "Exchange",
    "SharePoint",
    "Photoshop",
    "Acrobat",
    "Navigator",
    "Netware",
    "Solaris",
    "SPARC",
    "PowerEdge",
    "Latitude",
    "Inspiron",
    "Pavilion",
    "LaserJet",
    "DeskJet",
    "iPod",
    "iMac",
    "PowerBook",
    "Macintosh",
    "PlayStation",
    "Walkman",
    "Xbox",
    "Pentium",
    "Itanium",
    "Xeon",
    "Opteron",
    "Athlon",
    "BlackBerry",
    "Treo",
    "Palm Pilot",
    "Zaurus",
    "DB2",
    "Informix",
    "SQL Server",
    "Oracle Database",
    "MySQL",
    "Weblogic",
    "Tuxedo",
    "Visual Studio",
    "Eclipse",
    "NetBeans",
    "Rational Rose",
    "Tivoli",
    "OpenView",
];

/// Measurement units other than currency (paper's LNGTH category).
pub const UNITS: &[&str] = &[
    "km",
    "kilometer",
    "kilometers",
    "kilometre",
    "kilometres",
    "mile",
    "miles",
    "meter",
    "meters",
    "metre",
    "metres",
    "foot",
    "feet",
    "inch",
    "inches",
    "yard",
    "yards",
    "kg",
    "kilogram",
    "kilograms",
    "gram",
    "grams",
    "pound",
    "pounds",
    "ton",
    "tons",
    "tonne",
    "tonnes",
    "liter",
    "liters",
    "litre",
    "litres",
    "gallon",
    "gallons",
    "barrel",
    "barrels",
    "byte",
    "bytes",
    "kilobyte",
    "kilobytes",
    "megabyte",
    "megabytes",
    "gigabyte",
    "gigabytes",
    "terabyte",
    "terabytes",
    "gigahertz",
    "megahertz",
    "hertz",
    "watt",
    "watts",
    "kilowatt",
    "kilowatts",
    "megawatt",
    "megawatts",
    "acre",
    "acres",
    "hectare",
    "hectares",
    "sqft",
    "gbps",
    "mbps",
    "kbps",
];

/// Currency words: symbols handled separately by token rules.
pub const CURRENCY_WORDS: &[&str] = &[
    "dollar",
    "dollars",
    "usd",
    "cent",
    "cents",
    "euro",
    "euros",
    "eur",
    "pound sterling",
    "gbp",
    "yen",
    "jpy",
    "rupee",
    "rupees",
    "inr",
    "yuan",
    "rmb",
    "franc",
    "francs",
    "chf",
    "crore",
    "crores",
    "lakh",
    "lakhs",
    "rs",
];

/// Month names and weekday names (PERIOD rules).
pub const MONTHS: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Weekday names (PERIOD rules).
pub const WEEKDAYS: &[&str] = &[
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
];

/// Period words: relative and calendar period expressions.
pub const PERIOD_WORDS: &[&str] = &[
    "today",
    "yesterday",
    "tomorrow",
    "week",
    "month",
    "quarter",
    "year",
    "decade",
    "fiscal",
    "annual",
    "quarterly",
    "monthly",
    "weekly",
    "daily",
    "half-year",
    "halfyear",
    "fortnight",
];

/// Spelled-out small numbers (CNT rules).
pub const NUMBER_WORDS: &[&str] = &[
    "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten", "eleven",
    "twelve", "dozen", "twenty", "thirty", "forty", "fifty", "sixty", "seventy", "eighty",
    "ninety", "hundred", "thousand", "million", "billion", "trillion",
];

/// Objects: named artifacts (paper's OBJ category is a catch-all for
/// named things that are neither ORG/PROD/PLC/PRSN).
pub const OBJECTS: &[&str] = &[
    "Boeing 747",
    "Airbus A380",
    "Hubble Telescope",
    "Space Shuttle",
    "Concorde",
    "Titanic",
    "Internet",
    "World Wide Web",
    "Dow Jones",
    "Nasdaq",
    "Sensex",
    "Nikkei",
    "FTSE",
    "S&P 500",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gazetteer_single_and_multi() {
        let g = Gazetteer::from_entries(&["IBM", "General Electric", "Bank of America"]);
        assert!(g.contains("IBM"));
        assert!(g.contains("General Electric"));
        assert!(g.contains("Bank of America"));
        assert!(!g.contains("General"));
        assert_eq!(g.max_len(), 3);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn walk_reports_every_matching_prefix_length() {
        let g = Gazetteer::from_entries(&["New", "New York", "New York City"]);
        let mut w = g.walk();
        assert!(w.token("New"));
        assert!(w.matched());
        assert!(w.sep());
        assert!(w.token("York"));
        assert!(w.matched());
        assert!(w.sep());
        assert!(w.token("City"));
        assert!(w.matched());
        // One token past the longest entry kills the walk.
        assert!(!w.sep() || !w.token("Council"));
        assert!(!w.matched());
    }

    #[test]
    fn walk_dies_on_first_divergence() {
        let g = Gazetteer::from_entries(&["Bank of America"]);
        let mut w = g.walk();
        assert!(w.token("Bank"));
        assert!(!w.matched());
        assert!(w.sep());
        assert!(!w.token("off"), "walk must die inside the mismatching token");
        assert!(!w.alive());
        assert!(!w.token("America"));
    }

    #[test]
    fn folded_walk_matches_lowercase_entries() {
        let g = Gazetteer::from_entries(&["vice president", "ceo"]);
        let mut scratch = String::new();
        let mut w = g.walk();
        assert!(w.token_folded("Vice", &mut scratch));
        assert!(w.sep());
        assert!(w.token_folded("PRESIDENT", &mut scratch));
        assert!(w.matched());
        // Unicode fold falls back through the scratch buffer: the Kelvin
        // sign lowers to ASCII 'k'.
        let g2 = Gazetteer::from_entries(&["kelvin"]);
        let mut w2 = g2.walk();
        assert!(w2.token_folded("\u{212A}elvin", &mut scratch));
        assert!(w2.matched());
    }

    #[test]
    fn gazetteer_insert_idempotent() {
        let mut g = Gazetteer::default();
        g.insert("IBM");
        g.insert("IBM");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn builtin_lists_nonempty_and_deduped() {
        for (name, list) in [
            ("ORGANIZATIONS", ORGANIZATIONS),
            ("GIVEN_NAMES", GIVEN_NAMES),
            ("SURNAMES", SURNAMES),
            ("PLACES", PLACES),
            ("DESIGNATIONS", DESIGNATIONS),
            ("PRODUCTS", PRODUCTS),
            ("UNITS", UNITS),
            ("MONTHS", MONTHS),
            ("WEEKDAYS", WEEKDAYS),
        ] {
            assert!(list.len() > 5, "{name} too small");
            let mut v = list.to_vec();
            v.sort_unstable();
            let before = v.len();
            v.dedup();
            assert_eq!(v.len(), before, "{name} contains duplicates");
        }
    }

    #[test]
    fn designations_are_lowercase() {
        for d in DESIGNATIONS {
            assert_eq!(*d, d.to_lowercase(), "{d} must be stored lowercase");
        }
    }

    #[test]
    fn months_count() {
        assert_eq!(MONTHS.len(), 12);
        assert_eq!(WEEKDAYS.len(), 7);
    }
}
