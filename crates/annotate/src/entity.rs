//! Entity categories and spans.
//!
//! The 13 categories are exactly those of the paper's NER (§3.2.1):
//! "(1) ORG (organization name), (2) DESIG (designation), (3) OBJ
//! (object name), (4) TIM (time), (5) PERIOD (months, days, date, etc),
//! (6) CURRENCY (currency measure), (7) YEAR (sole mention of a year),
//! (8) PRCNT (percentage figure), (9) PROD (product name), (10) PLC
//! (name of a place), (11) PRSN (person name), (12) LNGTH (all units of
//! measurement other than currency), and (13) CNT (count figures)."

use std::fmt;
use std::str::FromStr;

/// The paper's 13 named-entity categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityCategory {
    /// Organization name (`IBM`, `Acme Corp.`).
    Org,
    /// Designation / job title (`CEO`, `Vice President`).
    Desig,
    /// Object name (named artifacts that are neither products nor
    /// organizations, e.g. `Boeing 747`, `Hubble Telescope`).
    Obj,
    /// Time of day (`4 p.m.`, `09:30`).
    Tim,
    /// Date-like period (`April 12`, `Monday`, `fourth quarter`).
    Period,
    /// Currency measure (`$ 160 million`, `Rs 5 crore`).
    Currency,
    /// Sole mention of a year (`1996`, `2004`).
    Year,
    /// Percentage figure (`10 %`, `5.3 percent`).
    Prcnt,
    /// Product name (`ThinkPad`, `WebSphere`).
    Prod,
    /// Place name (`Bangalore`, `New Zealand`).
    Plc,
    /// Person name (`Sam Palmisano`, `Mr. Andersen`).
    Prsn,
    /// Measurement unit other than currency (`5 km`, `3 gigabytes`).
    Lngth,
    /// Count figure (`5,000 employees`, `three subsidiaries`).
    Cnt,
}

impl EntityCategory {
    /// All 13 categories, in the paper's order.
    pub const ALL: [EntityCategory; 13] = [
        EntityCategory::Org,
        EntityCategory::Desig,
        EntityCategory::Obj,
        EntityCategory::Tim,
        EntityCategory::Period,
        EntityCategory::Currency,
        EntityCategory::Year,
        EntityCategory::Prcnt,
        EntityCategory::Prod,
        EntityCategory::Plc,
        EntityCategory::Prsn,
        EntityCategory::Lngth,
        EntityCategory::Cnt,
    ];

    /// Canonical capitalised tag name, as used in feature abstraction
    /// ("all named entity category names are capitalized" in Figures 3
    /// and 4 of the paper).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            EntityCategory::Org => "ORG",
            EntityCategory::Desig => "DESIG",
            EntityCategory::Obj => "OBJ",
            EntityCategory::Tim => "TIM",
            EntityCategory::Period => "PERIOD",
            EntityCategory::Currency => "CURRENCY",
            EntityCategory::Year => "YEAR",
            EntityCategory::Prcnt => "PRCNT",
            EntityCategory::Prod => "PROD",
            EntityCategory::Plc => "PLC",
            EntityCategory::Prsn => "PRSN",
            EntityCategory::Lngth => "LNGTH",
            EntityCategory::Cnt => "CNT",
        }
    }
}

impl fmt::Display for EntityCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

impl FromStr for EntityCategory {
    type Err = UnknownCategory;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EntityCategory::ALL
            .iter()
            .copied()
            .find(|c| c.tag() == s)
            .ok_or_else(|| UnknownCategory(s.to_string()))
    }
}

/// Error returned when parsing an unknown entity-category tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCategory(pub String);

impl fmt::Display for UnknownCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown entity category: {:?}", self.0)
    }
}

impl std::error::Error for UnknownCategory {}

/// A recognized entity: a contiguous run of tokens with a category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntitySpan {
    /// Category assigned by the recognizer.
    pub category: EntityCategory,
    /// Index of the first token of the entity in the token stream.
    pub first_token: usize,
    /// Number of tokens covered.
    pub token_len: usize,
    /// Byte offset of the entity start in the source text.
    pub start: usize,
    /// Byte offset one past the entity end in the source text.
    pub end: usize,
}

impl EntitySpan {
    /// Token index range covered by this span.
    #[must_use]
    pub fn token_range(&self) -> std::ops::Range<usize> {
        self.first_token..self.first_token + self.token_len
    }

    /// Slice the surface text of this entity from the source document.
    #[must_use]
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_categories() {
        assert_eq!(EntityCategory::ALL.len(), 13);
    }

    #[test]
    fn tags_are_unique_and_uppercase() {
        let mut tags: Vec<&str> = EntityCategory::ALL.iter().map(|c| c.tag()).collect();
        for t in &tags {
            assert_eq!(*t, t.to_uppercase());
        }
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 13);
    }

    #[test]
    fn parse_roundtrip() {
        for c in EntityCategory::ALL {
            assert_eq!(c.tag().parse::<EntityCategory>().unwrap(), c);
        }
        assert!("BOGUS".parse::<EntityCategory>().is_err());
    }

    #[test]
    fn span_token_range() {
        let span = EntitySpan {
            category: EntityCategory::Org,
            first_token: 2,
            token_len: 3,
            start: 10,
            end: 25,
        };
        assert_eq!(span.token_range(), 2..5);
    }
}
