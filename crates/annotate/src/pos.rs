//! Part-of-speech tagging.
//!
//! The paper assigns "a part-of-speech category as determined by QTag"
//! to every token that the NER does not cover. QTag is a probabilistic
//! tagger; our stand-in is a lexicon + rule tagger that emits the same
//! coarse categories the paper's Figures 3/4 plot in lowercase: `vb`
//! (verb), `rb` (adverb), `nn` (common noun), `np` (proper noun), `jj`
//! (adjective) plus the closed classes (`dt`, `in`, `prp`, `cc`, `md`,
//! `cd`, `to`).
//!
//! Tagging proceeds in priority order:
//! 1. closed-class lexicon (exact lowercase match),
//! 2. open-class lexicon of frequent business-news words,
//! 3. morphological suffix rules (`-ly` → rb, `-tion` → nn, …),
//! 4. shape rules (capitalised → np, numeric → cd),
//! 5. default: nn.

use etap_text::{is_capitalized, lower_into, Token, TokenKind, TokenSpan};
use std::cmp::Ordering;
use std::fmt;

/// Coarse part-of-speech tags (QTag-style, lowercase as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PosTag {
    /// Verb (any inflection): `acquired`, `announces`.
    Vb,
    /// Adverb: `sharply`, `recently`.
    Rb,
    /// Common noun: `revenue`, `merger`.
    Nn,
    /// Proper noun: unknown capitalised word.
    Np,
    /// Adjective: `strong`, `quarterly`.
    Jj,
    /// Determiner: `the`, `a`, `this`.
    Dt,
    /// Preposition / subordinating conjunction: `of`, `in`, `after`.
    In,
    /// Pronoun: `he`, `it`, `they`.
    Prp,
    /// Coordinating conjunction: `and`, `but`, `or`.
    Cc,
    /// Modal: `will`, `could`, `may`.
    Md,
    /// Cardinal number: `1996`, `5.3`, `three`.
    Cd,
    /// The word `to`.
    To,
    /// Punctuation.
    Punct,
}

impl PosTag {
    /// All tags.
    pub const ALL: [PosTag; 13] = [
        PosTag::Vb,
        PosTag::Rb,
        PosTag::Nn,
        PosTag::Np,
        PosTag::Jj,
        PosTag::Dt,
        PosTag::In,
        PosTag::Prp,
        PosTag::Cc,
        PosTag::Md,
        PosTag::Cd,
        PosTag::To,
        PosTag::Punct,
    ];

    /// Lowercase tag name, as in the paper's figures ("part of speech
    /// category names are expressed in small letters").
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            PosTag::Vb => "vb",
            PosTag::Rb => "rb",
            PosTag::Nn => "nn",
            PosTag::Np => "np",
            PosTag::Jj => "jj",
            PosTag::Dt => "dt",
            PosTag::In => "in",
            PosTag::Prp => "prp",
            PosTag::Cc => "cc",
            PosTag::Md => "md",
            PosTag::Cd => "cd",
            PosTag::To => "to",
            PosTag::Punct => "punct",
        }
    }

    /// The content tags whose instance values the paper found worth
    /// keeping (Figures 3/4: "verbs (vb), adverbs (rb), nouns (nn and np)
    /// and adjectives (jj) should not be abstracted at all").
    #[must_use]
    pub fn is_content(self) -> bool {
        matches!(
            self,
            PosTag::Vb | PosTag::Rb | PosTag::Nn | PosTag::Np | PosTag::Jj
        )
    }
}

impl fmt::Display for PosTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// (word, tag) pairs for closed classes and frequent open-class words.
/// Lowercase keys. Order within the array does not matter; lookups go
/// through a sorted binary search built at construction.
const LEXICON: &[(&str, PosTag)] = &[
    // Determiners.
    ("a", PosTag::Dt),
    ("an", PosTag::Dt),
    ("the", PosTag::Dt),
    ("this", PosTag::Dt),
    ("that", PosTag::Dt),
    ("these", PosTag::Dt),
    ("those", PosTag::Dt),
    ("each", PosTag::Dt),
    ("every", PosTag::Dt),
    ("some", PosTag::Dt),
    ("any", PosTag::Dt),
    ("no", PosTag::Dt),
    ("all", PosTag::Dt),
    ("both", PosTag::Dt),
    ("another", PosTag::Dt),
    ("its", PosTag::Dt),
    ("his", PosTag::Dt),
    ("her", PosTag::Dt),
    ("their", PosTag::Dt),
    ("our", PosTag::Dt),
    // Prepositions / subordinators.
    ("of", PosTag::In),
    ("in", PosTag::In),
    ("on", PosTag::In),
    ("at", PosTag::In),
    ("by", PosTag::In),
    ("for", PosTag::In),
    ("with", PosTag::In),
    ("from", PosTag::In),
    ("into", PosTag::In),
    ("over", PosTag::In),
    ("under", PosTag::In),
    ("after", PosTag::In),
    ("before", PosTag::In),
    ("during", PosTag::In),
    ("since", PosTag::In),
    ("until", PosTag::In),
    ("about", PosTag::In),
    ("against", PosTag::In),
    ("between", PosTag::In),
    ("through", PosTag::In),
    ("as", PosTag::In),
    ("than", PosTag::In),
    ("per", PosTag::In),
    ("amid", PosTag::In),
    ("despite", PosTag::In),
    ("via", PosTag::In),
    ("within", PosTag::In),
    ("without", PosTag::In),
    ("including", PosTag::In),
    ("following", PosTag::In),
    ("if", PosTag::In),
    ("while", PosTag::In),
    ("because", PosTag::In),
    ("although", PosTag::In),
    // Pronouns.
    ("i", PosTag::Prp),
    ("you", PosTag::Prp),
    ("he", PosTag::Prp),
    ("she", PosTag::Prp),
    ("it", PosTag::Prp),
    ("we", PosTag::Prp),
    ("they", PosTag::Prp),
    ("him", PosTag::Prp),
    ("them", PosTag::Prp),
    ("us", PosTag::Prp),
    ("who", PosTag::Prp),
    ("which", PosTag::Prp),
    ("what", PosTag::Prp),
    ("itself", PosTag::Prp),
    ("himself", PosTag::Prp),
    ("herself", PosTag::Prp),
    // Conjunctions.
    ("and", PosTag::Cc),
    ("or", PosTag::Cc),
    ("but", PosTag::Cc),
    ("nor", PosTag::Cc),
    ("yet", PosTag::Cc),
    ("so", PosTag::Cc),
    // Modals.
    ("will", PosTag::Md),
    ("would", PosTag::Md),
    ("can", PosTag::Md),
    ("could", PosTag::Md),
    ("may", PosTag::Md),
    ("might", PosTag::Md),
    ("shall", PosTag::Md),
    ("should", PosTag::Md),
    ("must", PosTag::Md),
    // To.
    ("to", PosTag::To),
    // Frequent verbs (business news).
    ("is", PosTag::Vb),
    ("are", PosTag::Vb),
    ("was", PosTag::Vb),
    ("were", PosTag::Vb),
    ("be", PosTag::Vb),
    ("been", PosTag::Vb),
    ("being", PosTag::Vb),
    ("has", PosTag::Vb),
    ("have", PosTag::Vb),
    ("had", PosTag::Vb),
    ("do", PosTag::Vb),
    ("does", PosTag::Vb),
    ("did", PosTag::Vb),
    ("said", PosTag::Vb),
    ("says", PosTag::Vb),
    ("say", PosTag::Vb),
    ("acquire", PosTag::Vb),
    ("acquires", PosTag::Vb),
    ("buy", PosTag::Vb),
    ("buys", PosTag::Vb),
    ("bought", PosTag::Vb),
    ("sell", PosTag::Vb),
    ("sells", PosTag::Vb),
    ("sold", PosTag::Vb),
    ("merge", PosTag::Vb),
    ("merges", PosTag::Vb),
    ("announce", PosTag::Vb),
    ("announces", PosTag::Vb),
    ("report", PosTag::Vb),
    ("reports", PosTag::Vb),
    ("appoint", PosTag::Vb),
    ("appoints", PosTag::Vb),
    ("name", PosTag::Vb),
    ("names", PosTag::Vb),
    ("hire", PosTag::Vb),
    ("hires", PosTag::Vb),
    ("resign", PosTag::Vb),
    ("resigns", PosTag::Vb),
    ("retire", PosTag::Vb),
    ("retires", PosTag::Vb),
    ("join", PosTag::Vb),
    ("joins", PosTag::Vb),
    ("grow", PosTag::Vb),
    ("grows", PosTag::Vb),
    ("grew", PosTag::Vb),
    ("rose", PosTag::Vb),
    ("rise", PosTag::Vb),
    ("rises", PosTag::Vb),
    ("fell", PosTag::Vb),
    ("fall", PosTag::Vb),
    ("falls", PosTag::Vb),
    ("gain", PosTag::Vb),
    ("gains", PosTag::Vb),
    ("plans", PosTag::Vb),
    ("plan", PosTag::Vb),
    ("expects", PosTag::Vb),
    ("expect", PosTag::Vb),
    ("agrees", PosTag::Vb),
    ("agree", PosTag::Vb),
    ("completes", PosTag::Vb),
    ("complete", PosTag::Vb),
    ("succeed", PosTag::Vb),
    ("succeeds", PosTag::Vb),
    ("replace", PosTag::Vb),
    ("replaces", PosTag::Vb),
    ("step", PosTag::Vb),
    ("steps", PosTag::Vb),
    ("take", PosTag::Vb),
    ("takes", PosTag::Vb),
    ("took", PosTag::Vb),
    ("became", PosTag::Vb),
    ("become", PosTag::Vb),
    ("becomes", PosTag::Vb),
    ("led", PosTag::Vb),
    ("leads", PosTag::Vb),
    ("lead", PosTag::Vb),
    ("post", PosTag::Vb),
    ("posts", PosTag::Vb),
    ("posted", PosTag::Vb),
    ("beat", PosTag::Vb),
    ("beats", PosTag::Vb),
    ("serve", PosTag::Vb),
    ("serves", PosTag::Vb),
    ("served", PosTag::Vb),
    // Frequent adverbs.
    ("not", PosTag::Rb),
    ("also", PosTag::Rb),
    ("now", PosTag::Rb),
    ("then", PosTag::Rb),
    ("here", PosTag::Rb),
    ("there", PosTag::Rb),
    ("up", PosTag::Rb),
    ("down", PosTag::Rb),
    ("again", PosTag::Rb),
    ("already", PosTag::Rb),
    ("still", PosTag::Rb),
    ("soon", PosTag::Rb),
    ("later", PosTag::Rb),
    ("earlier", PosTag::Rb),
    ("today", PosTag::Rb),
    ("well", PosTag::Rb),
    ("very", PosTag::Rb),
    ("too", PosTag::Rb),
    ("ago", PosTag::Rb),
    ("once", PosTag::Rb),
    // Frequent adjectives.
    ("new", PosTag::Jj),
    ("big", PosTag::Jj),
    ("small", PosTag::Jj),
    ("large", PosTag::Jj),
    ("strong", PosTag::Jj),
    ("weak", PosTag::Jj),
    ("good", PosTag::Jj),
    ("bad", PosTag::Jj),
    ("high", PosTag::Jj),
    ("low", PosTag::Jj),
    ("sharp", PosTag::Jj),
    ("solid", PosTag::Jj),
    ("severe", PosTag::Jj),
    ("worst", PosTag::Jj),
    ("best", PosTag::Jj),
    ("former", PosTag::Jj),
    ("current", PosTag::Jj),
    ("interim", PosTag::Jj),
    ("recent", PosTag::Jj),
    ("fiscal", PosTag::Jj),
    ("financial", PosTag::Jj),
    ("net", PosTag::Jj),
    ("gross", PosTag::Jj),
    ("global", PosTag::Jj),
    ("key", PosTag::Jj),
    ("major", PosTag::Jj),
    ("last", PosTag::Jj),
    ("next", PosTag::Jj),
    ("first", PosTag::Jj),
    ("second", PosTag::Jj),
    ("third", PosTag::Jj),
    ("fourth", PosTag::Jj),
    ("top", PosTag::Jj),
    ("senior", PosTag::Jj),
    ("significant", PosTag::Jj),
    ("outstanding", PosTag::Jj),
    ("effective", PosTag::Jj),
    ("immediate", PosTag::Jj),
    // Frequent nouns the suffix rules would otherwise miss.
    ("revenue", PosTag::Nn),
    ("profit", PosTag::Nn),
    ("loss", PosTag::Nn),
    ("losses", PosTag::Nn),
    ("growth", PosTag::Nn),
    ("merger", PosTag::Nn),
    ("deal", PosTag::Nn),
    ("stake", PosTag::Nn),
    ("share", PosTag::Nn),
    ("shares", PosTag::Nn),
    ("stock", PosTag::Nn),
    ("market", PosTag::Nn),
    ("company", PosTag::Nn),
    ("companies", PosTag::Nn),
    ("firm", PosTag::Nn),
    ("quarter", PosTag::Nn),
    ("year", PosTag::Nn),
    ("month", PosTag::Nn),
    ("week", PosTag::Nn),
    ("sales", PosTag::Nn),
    ("earnings", PosTag::Nn),
    ("results", PosTag::Nn),
    ("board", PosTag::Nn),
    ("unit", PosTag::Nn),
    ("business", PosTag::Nn),
    ("industry", PosTag::Nn),
    ("analyst", PosTag::Nn),
    ("analysts", PosTag::Nn),
    ("investor", PosTag::Nn),
    ("investors", PosTag::Nn),
    ("customer", PosTag::Nn),
    ("customers", PosTag::Nn),
    ("employee", PosTag::Nn),
    ("employees", PosTag::Nn),
    ("decline", PosTag::Nn),
    ("cash", PosTag::Nn),
    ("percent", PosTag::Nn),
    ("products", PosTag::Nn),
    ("product", PosTag::Nn),
    ("services", PosTag::Nn),
    ("service", PosTag::Nn),
];

/// Lexicon + rule part-of-speech tagger.
#[derive(Debug, Clone)]
pub struct PosTagger {
    lexicon: Vec<(&'static str, PosTag)>,
}

impl Default for PosTagger {
    fn default() -> Self {
        let mut lexicon = LEXICON.to_vec();
        lexicon.sort_unstable_by_key(|(w, _)| *w);
        Self { lexicon }
    }
}

impl PosTagger {
    /// Create a tagger with the built-in lexicon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Tag a single word (lowercased lookup, then rules).
    #[must_use]
    pub fn tag_word(&self, token: &Token<'_>) -> PosTag {
        // `String::new` does not allocate; the scratch is only written on
        // the non-ASCII fallback inside `tag_text`.
        let mut scratch = String::new();
        self.tag_text(token.text, token.kind, &mut scratch)
    }

    /// Tag a word given its text and shape — the allocation-free core
    /// shared by [`Self::tag_word`] and the span path. ASCII words (the
    /// common case) are looked up with an in-place case-folding
    /// comparator and byte-level suffix rules; non-ASCII words lower
    /// through `scratch`.
    #[must_use]
    pub fn tag_text(&self, text: &str, kind: TokenKind, scratch: &mut String) -> PosTag {
        if kind == TokenKind::Punct {
            return PosTag::Punct;
        }
        if kind.is_numeric() {
            return PosTag::Cd;
        }
        if text.is_ascii() {
            if let Ok(i) = self.lexicon.binary_search_by(|(w, _)| cmp_folded(w, text)) {
                return self.lexicon[i].1;
            }
            if let Some(tag) = suffix_rule_ascii(text.as_bytes()) {
                return tag;
            }
        } else {
            lower_into(text, scratch);
            if let Ok(i) = self
                .lexicon
                .binary_search_by(|(w, _)| (*w).cmp(scratch.as_str()))
            {
                return self.lexicon[i].1;
            }
            // Morphological suffix rules on the lowercase form.
            if let Some(tag) = suffix_rule(scratch) {
                return tag;
            }
        }
        // Shape rules.
        if is_capitalized(text, kind) {
            return PosTag::Np;
        }
        PosTag::Nn
    }

    /// Tag every token of a snippet.
    #[must_use]
    pub fn tag(&self, tokens: &[Token<'_>]) -> Vec<PosTag> {
        tokens.iter().map(|t| self.tag_word(t)).collect()
    }

    /// Tag token spans into a caller-kept vector (cleared first) — the
    /// zero-allocation companion of [`Self::tag`].
    pub fn tag_spans_into(
        &self,
        text: &str,
        spans: &[TokenSpan],
        scratch: &mut String,
        out: &mut Vec<PosTag>,
    ) {
        out.clear();
        out.extend(
            spans
                .iter()
                .map(|s| self.tag_text(s.text(text), s.kind, scratch)),
        );
    }
}

/// Compare a lowercase-ASCII lexicon key against `text` folded to ASCII
/// lowercase, without materialising the folded string. Equivalent to
/// `w.cmp(&text.to_ascii_lowercase())`.
fn cmp_folded(w: &str, text: &str) -> Ordering {
    let a = w.as_bytes();
    let b = text.as_bytes();
    for (x, y) in a.iter().zip(b) {
        match x.cmp(&y.to_ascii_lowercase()) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// Whether ASCII bytes `s` end with lowercase suffix `suf` under ASCII
/// case folding.
fn ends_fold(s: &[u8], suf: &str) -> bool {
    let suf = suf.as_bytes();
    s.len() >= suf.len()
        && s[s.len() - suf.len()..]
            .iter()
            .zip(suf)
            .all(|(b, e)| b.to_ascii_lowercase() == *e)
}

/// [`suffix_rule`] specialised to ASCII bytes with in-place case folding;
/// byte length equals lowered length for ASCII, so the thresholds match.
fn suffix_rule_ascii(s: &[u8]) -> Option<PosTag> {
    if s.len() > 4 && ends_fold(s, "ly") {
        return Some(PosTag::Rb);
    }
    for suf in [
        "tion", "sion", "ment", "ness", "ship", "ance", "ence", "ity", "ism", "ist",
    ] {
        if s.len() > suf.len() + 2 && ends_fold(s, suf) {
            return Some(PosTag::Nn);
        }
    }
    if s.len() > 4 && (ends_fold(s, "er") || ends_fold(s, "or")) {
        return Some(PosTag::Nn);
    }
    for suf in ["ous", "ful", "ive", "able", "ible", "al", "ic", "ish"] {
        if s.len() > suf.len() + 2 && ends_fold(s, suf) {
            return Some(PosTag::Jj);
        }
    }
    if s.len() > 4 && (ends_fold(s, "ing") || ends_fold(s, "ed")) {
        return Some(PosTag::Vb);
    }
    if s.len() > 3 && ends_fold(s, "ize") {
        return Some(PosTag::Vb);
    }
    None
}

/// Morphological fallback rules, ordered by reliability.
fn suffix_rule(lower: &str) -> Option<PosTag> {
    // Adverbs.
    if lower.len() > 4 && lower.ends_with("ly") {
        return Some(PosTag::Rb);
    }
    // Nominal suffixes.
    for suf in [
        "tion", "sion", "ment", "ness", "ship", "ance", "ence", "ity", "ism", "ist",
    ] {
        if lower.len() > suf.len() + 2 && lower.ends_with(suf) {
            return Some(PosTag::Nn);
        }
    }
    // -er / -or agent nouns vs comparatives: treat as noun (chairman,
    // officer, investor dominate business text).
    if lower.len() > 4 && (lower.ends_with("er") || lower.ends_with("or")) {
        return Some(PosTag::Nn);
    }
    // Adjectival suffixes.
    for suf in ["ous", "ful", "ive", "able", "ible", "al", "ic", "ish"] {
        if lower.len() > suf.len() + 2 && lower.ends_with(suf) {
            return Some(PosTag::Jj);
        }
    }
    // Verbal inflections.
    if lower.len() > 4 && (lower.ends_with("ing") || lower.ends_with("ed")) {
        return Some(PosTag::Vb);
    }
    if lower.len() > 3 && lower.ends_with("ize") {
        return Some(PosTag::Vb);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use etap_text::tokenize;

    fn tag_of(word: &str) -> PosTag {
        let toks = tokenize(word);
        PosTagger::new().tag_word(&toks[0])
    }

    #[test]
    fn tag_spans_into_matches_tag() {
        use etap_text::tokenize_into;
        let text = "The Board ANNOUNCED sharply lower fourth-quarter résumé figures in 2004, Société Générale said.";
        let tagger = PosTagger::new();
        let expect = tagger.tag(&tokenize(text));
        let mut spans = Vec::new();
        let mut out = Vec::new();
        let mut scratch = String::new();
        tokenize_into(text, &mut spans);
        tagger.tag_spans_into(text, &spans, &mut scratch, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn closed_classes() {
        assert_eq!(tag_of("the"), PosTag::Dt);
        assert_eq!(tag_of("of"), PosTag::In);
        assert_eq!(tag_of("and"), PosTag::Cc);
        assert_eq!(tag_of("they"), PosTag::Prp);
        assert_eq!(tag_of("would"), PosTag::Md);
        assert_eq!(tag_of("to"), PosTag::To);
    }

    #[test]
    fn lexicon_verbs() {
        assert_eq!(tag_of("acquired"), PosTag::Vb);
        assert_eq!(tag_of("announces"), PosTag::Vb);
        assert_eq!(tag_of("resigned"), PosTag::Vb);
        assert_eq!(tag_of("grew"), PosTag::Vb);
    }

    #[test]
    fn suffix_rules() {
        assert_eq!(tag_of("sharply"), PosTag::Rb);
        assert_eq!(tag_of("acquisition"), PosTag::Nn);
        assert_eq!(tag_of("announcement"), PosTag::Nn);
        assert_eq!(tag_of("profitable"), PosTag::Jj);
        assert_eq!(tag_of("restructuring"), PosTag::Vb);
    }

    #[test]
    fn shape_rules() {
        assert_eq!(tag_of("Zyxcorp"), PosTag::Np); // unknown capitalised
        assert_eq!(tag_of("1996"), PosTag::Cd);
        assert_eq!(tag_of("5.3"), PosTag::Cd);
        assert_eq!(tag_of("."), PosTag::Punct);
        assert_eq!(tag_of("widget"), PosTag::Nn); // unknown lowercase
    }

    #[test]
    fn case_insensitive_lexicon() {
        assert_eq!(tag_of("The"), PosTag::Dt);
        assert_eq!(tag_of("AND"), PosTag::Cc);
    }

    #[test]
    fn sentence_tagging() {
        let toks = tokenize("The company acquired a small firm.");
        let tags = PosTagger::new().tag(&toks);
        assert_eq!(
            tags,
            vec![
                PosTag::Dt,
                PosTag::Nn,
                PosTag::Vb,
                PosTag::Dt,
                PosTag::Jj,
                PosTag::Nn,
                PosTag::Punct
            ]
        );
    }

    #[test]
    fn content_tag_partition() {
        assert!(PosTag::Vb.is_content());
        assert!(PosTag::Nn.is_content());
        assert!(PosTag::Np.is_content());
        assert!(PosTag::Jj.is_content());
        assert!(PosTag::Rb.is_content());
        assert!(!PosTag::Dt.is_content());
        assert!(!PosTag::Punct.is_content());
    }

    #[test]
    fn lexicon_is_consistent_after_sort() {
        // Every word in the raw lexicon must be findable.
        let tagger = PosTagger::new();
        for (w, t) in LEXICON {
            let toks = tokenize(w);
            if toks.len() == 1 {
                assert_eq!(tagger.tag_word(&toks[0]), *t, "lexicon lookup for {w}");
            }
        }
    }

    #[test]
    fn tag_names_lowercase_and_unique() {
        let mut names: Vec<&str> = PosTag::ALL.iter().map(|t| t.tag()).collect();
        for n in &names {
            assert_eq!(*n, n.to_lowercase());
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PosTag::ALL.len());
    }
}
