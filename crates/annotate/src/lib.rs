//! # etap-annotate — linguistic annotation for the ETAP reproduction
//!
//! ETAP (§3.2) annotates every snippet before classification:
//!
//! 1. a **named-entity recognizer** assigns one of 13 entity categories
//!    (ORG, DESIG, OBJ, TIM, PERIOD, CURRENCY, YEAR, PRCNT, PROD, PLC,
//!    PRSN, LNGTH, CNT) to entity mentions, and
//! 2. any token *not* covered by an entity is assigned a
//!    **part-of-speech** category ("was assigned a part-of-speech
//!    category as determined by QTag").
//!
//! The paper used IBM's proprietary NER and the QTag tagger; this crate
//! provides from-scratch stand-ins with the same observable interface:
//! gazetteer + token-pattern NER and a lexicon + suffix-rule POS tagger.
//! Both are deliberately *imperfect in realistic ways* (unknown company
//! names, ambiguous capitalised words) — the paper itself notes that
//! "the overall result of ETAP is heavily dependent on the accuracy of
//! the named entity recognizer".
//!
//! The main entry point is [`Annotator::annotate`], which produces an
//! [`AnnotatedSnippet`]: the token stream with, for every token, its
//! POS tag and (when applicable) the entity span it belongs to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotated;
pub mod entity;
pub mod gazetteer;
pub mod ner;
pub mod pos;

pub use annotated::{AnnotatedSnippet, AnnotatedToken};
pub use entity::{EntityCategory, EntitySpan};
pub use ner::NamedEntityRecognizer;
pub use pos::{PosTag, PosTagger};

/// Full annotator: NER + POS in one pass.
#[derive(Debug, Default, Clone)]
pub struct Annotator {
    ner: NamedEntityRecognizer,
    pos: PosTagger,
}

impl Annotator {
    /// Create an annotator with the default gazetteers and lexicon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an annotator wrapping custom components.
    #[must_use]
    pub fn with_components(ner: NamedEntityRecognizer, pos: PosTagger) -> Self {
        Self { ner, pos }
    }

    /// Annotate a snippet: tokenize, find entity spans, tag the rest.
    #[must_use]
    pub fn annotate(&self, text: &str) -> AnnotatedSnippet {
        let tokens = etap_text::tokenize(text);
        let entities = self.ner.recognize(&tokens);
        let pos_tags = self.pos.tag(&tokens);
        AnnotatedSnippet::assemble(text, &tokens, entities, &pos_tags)
    }

    /// Annotate many snippets on up to `threads` worker threads
    /// (`0` = the `ETAP_THREADS` default). Annotation is the pipeline's
    /// dominant cost and is embarrassingly parallel: output `i` is
    /// exactly `self.annotate(texts[i].as_ref())`, order-preserving and
    /// bit-identical to the sequential path for any thread count.
    #[must_use]
    pub fn annotate_batch<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
        threads: usize,
    ) -> Vec<AnnotatedSnippet> {
        etap_runtime::par_map(texts, threads, |t| self.annotate(t.as_ref()))
    }

    /// Access the underlying NER (e.g. to extend gazetteers).
    #[must_use]
    pub fn ner(&self) -> &NamedEntityRecognizer {
        &self.ner
    }

    /// Mutable access to the underlying NER.
    pub fn ner_mut(&mut self) -> &mut NamedEntityRecognizer {
        &mut self.ner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_annotation() {
        let ann = Annotator::new();
        let snip = ann.annotate("IBM acquired Daksh for $160 million in April 2004.");
        // ORG, CURRENCY and PERIOD should all be present ("April 2004"
        // is one PERIOD span that absorbs the year).
        let cats: Vec<EntityCategory> = snip.entities.iter().map(|e| e.category).collect();
        assert!(cats.contains(&EntityCategory::Org), "{cats:?}");
        assert!(cats.contains(&EntityCategory::Currency), "{cats:?}");
        assert!(cats.contains(&EntityCategory::Period), "{cats:?}");
    }

    #[test]
    fn tokens_outside_entities_have_pos_tags() {
        let ann = Annotator::new();
        let snip = ann.annotate("IBM acquired Daksh.");
        let acquired = snip
            .tokens
            .iter()
            .find(|t| t.text == "acquired")
            .expect("token present");
        assert_eq!(acquired.entity, None);
        assert_eq!(acquired.pos, PosTag::Vb);
    }
}
