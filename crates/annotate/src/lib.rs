//! # etap-annotate — linguistic annotation for the ETAP reproduction
//!
//! ETAP (§3.2) annotates every snippet before classification:
//!
//! 1. a **named-entity recognizer** assigns one of 13 entity categories
//!    (ORG, DESIG, OBJ, TIM, PERIOD, CURRENCY, YEAR, PRCNT, PROD, PLC,
//!    PRSN, LNGTH, CNT) to entity mentions, and
//! 2. any token *not* covered by an entity is assigned a
//!    **part-of-speech** category ("was assigned a part-of-speech
//!    category as determined by QTag").
//!
//! The paper used IBM's proprietary NER and the QTag tagger; this crate
//! provides from-scratch stand-ins with the same observable interface:
//! gazetteer + token-pattern NER and a lexicon + suffix-rule POS tagger.
//! Both are deliberately *imperfect in realistic ways* (unknown company
//! names, ambiguous capitalised words) — the paper itself notes that
//! "the overall result of ETAP is heavily dependent on the accuracy of
//! the named entity recognizer".
//!
//! The main entry point is [`Annotator::annotate`], which produces an
//! [`AnnotatedSnippet`]: the token stream with, for every token, its
//! POS tag and (when applicable) the entity span it belongs to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotated;
pub mod entity;
pub mod gazetteer;
pub mod ner;
pub mod pos;

pub use annotated::{AnnotatedSnippet, SnippetBuf, TokenRef};
pub use entity::{EntityCategory, EntitySpan};
pub use ner::NamedEntityRecognizer;
pub use pos::{PosTag, PosTagger};

use annotated::SnipRange;
use etap_runtime::Arena;
use etap_text::TokenSpan;
use std::sync::Arc;

/// Per-worker reusable state for the zero-allocation annotate path:
/// tokenizer span vector, NER/POS outputs, the lowercase fold buffer, and
/// the [`Arena`] that owns snippet buffers. One scratch per worker
/// (threaded through `par_chunk_map_with`); after warm-up, annotating a
/// snippet whose previous output has been dropped allocates nothing.
#[derive(Debug, Default)]
pub struct AnnotateScratch {
    spans: Vec<TokenSpan>,
    entities: Vec<EntitySpan>,
    pos: Vec<PosTag>,
    lower: String,
    ranges: Vec<SnipRange>,
    arena: Arena<SnippetBuf>,
}

impl AnnotateScratch {
    /// Create an empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Full annotator: NER + POS in one pass.
#[derive(Debug, Default, Clone)]
pub struct Annotator {
    ner: NamedEntityRecognizer,
    pos: PosTagger,
}

impl Annotator {
    /// Create an annotator with the default gazetteers and lexicon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an annotator wrapping custom components.
    #[must_use]
    pub fn with_components(ner: NamedEntityRecognizer, pos: PosTagger) -> Self {
        Self { ner, pos }
    }

    /// Annotate a snippet: tokenize, find entity spans, tag the rest.
    ///
    /// Convenience wrapper over [`Self::annotate_with`] with a throwaway
    /// scratch; loops should hold an [`AnnotateScratch`] and call
    /// `annotate_with` directly.
    #[must_use]
    pub fn annotate(&self, text: &str) -> AnnotatedSnippet {
        self.annotate_with(text, &mut AnnotateScratch::new())
    }

    /// Annotate a snippet reusing per-worker scratch state. In steady
    /// state (scratch warm, previous snippet dropped) this performs zero
    /// heap allocations: the tokenizer writes spans into the scratch, the
    /// NER walks gazetteer tries without key strings, and the output
    /// buffer is recycled through the scratch's arena. If the previous
    /// snippet is still alive the arena spills to a fresh buffer, so
    /// retaining snippets is safe, just not free.
    #[must_use]
    pub fn annotate_with(&self, text: &str, scratch: &mut AnnotateScratch) -> AnnotatedSnippet {
        let AnnotateScratch {
            spans,
            entities,
            pos,
            lower,
            arena,
            ..
        } = scratch;
        etap_text::tokenize_into(text, spans);
        self.ner.recognize_into(text, spans, lower, entities);
        self.pos.tag_spans_into(text, spans, lower, pos);
        let range = arena.fill().push_snippet(text, spans, pos, entities);
        AnnotatedSnippet::from_shared(arena.share(), range)
    }

    /// Annotate one chunk of a batch into a single shared buffer: the
    /// arena is filled once per chunk (reset-per-chunk), and every
    /// snippet of the chunk shares the one `Arc` buffer.
    fn annotate_chunk<S: AsRef<str>>(
        &self,
        chunk: &[S],
        scratch: &mut AnnotateScratch,
    ) -> Vec<AnnotatedSnippet> {
        let AnnotateScratch {
            spans,
            entities,
            pos,
            lower,
            ranges,
            arena,
        } = scratch;
        ranges.clear();
        {
            let buf = arena.fill();
            for t in chunk {
                let text = t.as_ref();
                etap_text::tokenize_into(text, spans);
                self.ner.recognize_into(text, spans, lower, entities);
                self.pos.tag_spans_into(text, spans, lower, pos);
                ranges.push(buf.push_snippet(text, spans, pos, entities));
            }
        }
        let shared = arena.share();
        ranges
            .iter()
            .map(|r| AnnotatedSnippet::from_shared(Arc::clone(&shared), *r))
            .collect()
    }

    /// Annotate many snippets on up to `threads` worker threads
    /// (`0` = the `ETAP_THREADS` default). Annotation is the pipeline's
    /// dominant cost and is embarrassingly parallel: output `i` is
    /// content-equal to `self.annotate(texts[i].as_ref())`,
    /// order-preserving and bit-identical to the sequential path for any
    /// thread count. Each fixed-size chunk shares one arena-recycled
    /// snippet buffer (snippet equality is content-based, so the chunk
    /// packing is unobservable).
    #[must_use]
    pub fn annotate_batch<S: AsRef<str> + Sync>(
        &self,
        texts: &[S],
        threads: usize,
    ) -> Vec<AnnotatedSnippet> {
        use etap_runtime::par::{par_chunk_map_with, CHUNK};
        if texts.is_empty() {
            return Vec::new();
        }
        let n_chunks = texts.len().div_ceil(CHUNK);
        let per_chunk = par_chunk_map_with(n_chunks, threads, AnnotateScratch::new, |sc, ci| {
            let chunk = &texts[ci * CHUNK..(ci * CHUNK + CHUNK).min(texts.len())];
            self.annotate_chunk(chunk, sc)
        });
        let mut out = Vec::with_capacity(texts.len());
        for chunk in per_chunk {
            out.extend(chunk);
        }
        out
    }

    /// Access the underlying NER (e.g. to extend gazetteers).
    #[must_use]
    pub fn ner(&self) -> &NamedEntityRecognizer {
        &self.ner
    }

    /// Mutable access to the underlying NER.
    pub fn ner_mut(&mut self) -> &mut NamedEntityRecognizer {
        &mut self.ner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_annotation() {
        let ann = Annotator::new();
        let snip = ann.annotate("IBM acquired Daksh for $160 million in April 2004.");
        // ORG, CURRENCY and PERIOD should all be present ("April 2004"
        // is one PERIOD span that absorbs the year).
        let cats: Vec<EntityCategory> = snip.entities().iter().map(|e| e.category).collect();
        assert!(cats.contains(&EntityCategory::Org), "{cats:?}");
        assert!(cats.contains(&EntityCategory::Currency), "{cats:?}");
        assert!(cats.contains(&EntityCategory::Period), "{cats:?}");
    }

    #[test]
    fn tokens_outside_entities_have_pos_tags() {
        let ann = Annotator::new();
        let snip = ann.annotate("IBM acquired Daksh.");
        let acquired = snip
            .tokens()
            .find(|t| t.text == "acquired")
            .expect("token present");
        assert_eq!(acquired.entity, None);
        assert_eq!(acquired.pos, PosTag::Vb);
    }

    #[test]
    fn annotate_with_reuses_scratch_and_matches_annotate() {
        let ann = Annotator::new();
        let texts = [
            "IBM acquired Daksh for $160 million in April 2004.",
            "Oracle gained 5 % on Monday, said Mr. Andersen.",
            "Société Générale opened offices in New York City.",
        ];
        let mut scratch = AnnotateScratch::new();
        for text in texts {
            let fresh = ann.annotate(text);
            let reused = ann.annotate_with(text, &mut scratch);
            assert_eq!(reused, fresh, "mismatch on {text:?}");
        }
    }

    #[test]
    fn annotate_batch_matches_sequential_annotate() {
        let ann = Annotator::new();
        // Straddle the chunk boundary so multiple shared buffers appear.
        let texts: Vec<String> = (0..etap_runtime::par::CHUNK + 7)
            .map(|i| format!("Company{i} Inc. hired {i} employees in Q{} 2004.", i % 4 + 1))
            .collect();
        for threads in [1, 4] {
            let batch = ann.annotate_batch(&texts, threads);
            assert_eq!(batch.len(), texts.len());
            for (snip, text) in batch.iter().zip(&texts) {
                assert_eq!(snip, &ann.annotate(text));
            }
        }
    }
}
