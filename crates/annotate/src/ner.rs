//! Named-entity recognition.
//!
//! A rule + gazetteer recognizer that emits the paper's 13 entity
//! categories over a token stream. The matcher scans left to right; at
//! every position it collects candidate matches from all rules and keeps
//! the *longest* one (ties broken by rule priority), then jumps past it —
//! the standard longest-match span-resolution strategy.
//!
//! Rule inventory (priority order within equal lengths):
//!
//! | rule | category |
//! |------|----------|
//! | currency symbol/word + figure (+ scale word) | CURRENCY |
//! | figure + `%` / `percent` | PRCNT |
//! | figure + `a.m.`/`p.m.` or `HH:MM` | TIM |
//! | month (+ day) (+ year), weekday, ordinal + `quarter` | PERIOD |
//! | bare 19xx/20xx figure | YEAR |
//! | figure + measurement unit | LNGTH |
//! | figure + plural noun, spelled-out numbers | CNT |
//! | honorific + capitalised run, given-name + surname | PRSN |
//! | org gazetteer, capitalised run + org suffix | ORG |
//! | designation lexicon (case-insensitive) | DESIG |
//! | place gazetteer | PLC |
//! | product gazetteer | PROD |
//! | object gazetteer | OBJ |
//!
//! Unknown capitalised words that match no rule are deliberately left
//! unannotated (they surface as `np` POS tokens downstream) — this is the
//! realistic imperfection the paper's §6 discusses.
//!
//! ## Zero-allocation matching
//!
//! All rules run over a [`Toks`] token source — either borrowed `Token`
//! slices (the compatibility path) or `(&str, &[TokenSpan])` pairs (the
//! hot path fed by [`etap_text::tokenize_into`]). Gazetteer probes walk
//! the byte trie incrementally instead of building `String` keys, and
//! case-insensitive word checks fold ASCII in place (`eq_ignore_ascii_case`),
//! falling back to a caller-kept scratch `String` only for non-ASCII
//! tokens. Steady-state recognition allocates nothing.

use crate::entity::{EntityCategory, EntitySpan};
use crate::gazetteer::{self, Gazetteer};
use etap_text::{is_capitalized, lower_into, tokenize, Token, TokenKind, TokenSpan};

/// A candidate match produced by one rule at one position.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    category: EntityCategory,
    token_len: usize,
    /// Lower value wins among equal lengths.
    priority: u8,
}

/// A read-only token source the recognizer rules run over: either a
/// borrowed `[Token]` slice or spans resolved against a text buffer.
/// Monomorphised, so the rules compile to the same code for both.
trait Toks {
    fn len(&self) -> usize;
    fn text(&self, i: usize) -> &str;
    fn kind(&self, i: usize) -> TokenKind;
    fn start(&self, i: usize) -> usize;
    fn end(&self, i: usize) -> usize;
    fn capitalized(&self, i: usize) -> bool {
        is_capitalized(self.text(i), self.kind(i))
    }
}

impl Toks for [Token<'_>] {
    fn len(&self) -> usize {
        <[Token<'_>]>::len(self)
    }
    fn text(&self, i: usize) -> &str {
        self[i].text
    }
    fn kind(&self, i: usize) -> TokenKind {
        self[i].kind
    }
    fn start(&self, i: usize) -> usize {
        self[i].start
    }
    fn end(&self, i: usize) -> usize {
        self[i].end
    }
}

/// Spans over a text buffer — the structure-of-arrays token source.
struct SpanToks<'a> {
    text: &'a str,
    spans: &'a [TokenSpan],
}

impl Toks for SpanToks<'_> {
    fn len(&self) -> usize {
        self.spans.len()
    }
    fn text(&self, i: usize) -> &str {
        self.spans[i].text(self.text)
    }
    fn kind(&self, i: usize) -> TokenKind {
        self.spans[i].kind
    }
    fn start(&self, i: usize) -> usize {
        self.spans[i].start as usize
    }
    fn end(&self, i: usize) -> usize {
        self.spans[i].end as usize
    }
}

/// Case-insensitive membership of `text` in a list of lowercase words.
/// ASCII compares in place; non-ASCII lowers through `scratch` (the
/// built-in lists are all ASCII, so the fold direction matches the old
/// `Token::lower` comparison exactly).
fn lower_in(text: &str, words: &[&str], scratch: &mut String) -> bool {
    if text.is_ascii() {
        words.iter().any(|w| text.eq_ignore_ascii_case(w))
    } else {
        lower_into(text, scratch);
        words.iter().any(|w| *w == scratch.as_str())
    }
}

/// Case-insensitive equality against one lowercase word.
fn lower_eq(text: &str, word: &str, scratch: &mut String) -> bool {
    if text.is_ascii() {
        text.eq_ignore_ascii_case(word)
    } else {
        lower_into(text, scratch);
        scratch.as_str() == word
    }
}

/// Gazetteer- and rule-based NER for the 13 ETAP categories.
#[derive(Debug, Clone)]
pub struct NamedEntityRecognizer {
    orgs: Gazetteer,
    places: Gazetteer,
    products: Gazetteer,
    objects: Gazetteer,
    given_names: Gazetteer,
    surnames: Gazetteer,
    designations: Gazetteer,
    org_suffixes: Gazetteer,
}

impl Default for NamedEntityRecognizer {
    fn default() -> Self {
        Self {
            orgs: normalized(gazetteer::ORGANIZATIONS, false),
            places: normalized(gazetteer::PLACES, false),
            products: normalized(gazetteer::PRODUCTS, false),
            objects: normalized(gazetteer::OBJECTS, false),
            given_names: normalized(gazetteer::GIVEN_NAMES, false),
            surnames: normalized(gazetteer::SURNAMES, false),
            designations: normalized(gazetteer::DESIGNATIONS, true),
            org_suffixes: normalized(gazetteer::ORG_SUFFIXES, false),
        }
    }
}

/// Tokenize each entry and join with single spaces so that gazetteer keys
/// match the token stream exactly (e.g. `J. P. Morgan` → `J . P . Morgan`).
fn normalized(entries: &[&str], lowercase: bool) -> Gazetteer {
    let mut g = Gazetteer::default();
    for e in entries {
        let joined = join_tokens(e, lowercase);
        if !joined.is_empty() {
            g.insert(&joined);
        }
    }
    g
}

fn join_tokens(text: &str, lowercase: bool) -> String {
    let toks = tokenize(text);
    let mut s = String::with_capacity(text.len());
    for (i, t) in toks.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        if lowercase {
            s.push_str(&t.lower());
        } else {
            s.push_str(t.text);
        }
    }
    s
}

const HONORIFICS: &[&str] = &["Mr", "Mrs", "Ms", "Dr", "Prof", "Sir", "Madam"];
const SCALE_WORDS: &[&str] = &[
    "million", "billion", "trillion", "thousand", "crore", "lakh", "m", "bn",
];
const CURRENCY_SYMBOLS: &[&str] = &["$", "€", "£", "¥", "₹"];
const CURRENCY_CODES: &[&str] = &["rs", "usd", "eur", "gbp", "inr", "jpy"];
const PERIOD_HEADS: &[&str] = &[
    "first", "second", "third", "fourth", "last", "next", "this", "current", "previous", "fiscal",
];
const COUNT_NOUNS: &[&str] = &[
    "employees",
    "people",
    "workers",
    "staff",
    "stores",
    "offices",
    "branches",
    "customers",
    "subscribers",
    "users",
    "units",
    "shares",
    "subsidiaries",
    "plants",
    "factories",
    "countries",
    "cities",
    "products",
    "patents",
    "clients",
    "members",
    "engineers",
];

impl NamedEntityRecognizer {
    /// Create a recognizer with the built-in gazetteers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an organization name at runtime (e.g. from a domain list).
    pub fn add_organization(&mut self, name: &str) {
        let j = join_tokens(name, false);
        self.orgs.insert(&j);
    }

    /// Add a person's given name.
    pub fn add_given_name(&mut self, name: &str) {
        self.given_names.insert(&join_tokens(name, false));
    }

    /// Add a surname.
    pub fn add_surname(&mut self, name: &str) {
        self.surnames.insert(&join_tokens(name, false));
    }

    /// Add a place name.
    pub fn add_place(&mut self, name: &str) {
        self.places.insert(&join_tokens(name, false));
    }

    /// Add a product name.
    pub fn add_product(&mut self, name: &str) {
        self.products.insert(&join_tokens(name, false));
    }

    /// Recognize entities in pre-tokenized text.
    #[must_use]
    pub fn recognize(&self, tokens: &[Token<'_>]) -> Vec<EntitySpan> {
        let mut out = Vec::new();
        let mut scratch = String::new();
        self.recognize_impl(tokens, &mut scratch, &mut out);
        out
    }

    /// Recognize entities over token spans, writing into a caller-kept
    /// output vector (cleared first). `scratch` is the lowercase fold
    /// buffer for non-ASCII tokens; with ASCII input nothing allocates.
    pub fn recognize_into(
        &self,
        text: &str,
        spans: &[TokenSpan],
        scratch: &mut String,
        out: &mut Vec<EntitySpan>,
    ) {
        out.clear();
        self.recognize_impl(&SpanToks { text, spans }, scratch, out);
    }

    /// Convenience: tokenize and recognize in one call, returning entity
    /// surfaces borrowed from `text`.
    #[must_use]
    pub fn recognize_text<'a>(&self, text: &'a str) -> Vec<(EntityCategory, &'a str)> {
        let tokens = tokenize(text);
        self.recognize(&tokens)
            .into_iter()
            .map(|s| (s.category, &text[s.start..s.end]))
            .collect()
    }

    fn recognize_impl<S: Toks + ?Sized>(
        &self,
        toks: &S,
        scratch: &mut String,
        out: &mut Vec<EntitySpan>,
    ) {
        let mut i = 0usize;
        while i < toks.len() {
            if let Some(best) = self.best_candidate(toks, i, scratch) {
                let last = i + best.token_len - 1;
                out.push(EntitySpan {
                    category: best.category,
                    first_token: i,
                    token_len: best.token_len,
                    start: toks.start(i),
                    end: toks.end(last),
                });
                i += best.token_len;
            } else {
                i += 1;
            }
        }
    }

    fn best_candidate<S: Toks + ?Sized>(
        &self,
        toks: &S,
        i: usize,
        sc: &mut String,
    ) -> Option<Candidate> {
        let mut best: Option<Candidate> = None;
        let mut consider = |c: Option<Candidate>| {
            if let Some(c) = c {
                best = match best {
                    None => Some(c),
                    Some(b)
                        if c.token_len > b.token_len
                            || (c.token_len == b.token_len && c.priority < b.priority) =>
                    {
                        Some(c)
                    }
                    b => b,
                };
            }
        };
        consider(self.match_currency(toks, i, sc));
        consider(self.match_percent(toks, i, sc));
        consider(self.match_time(toks, i, sc));
        consider(self.match_period(toks, i, sc));
        consider(self.match_year(toks, i));
        consider(self.match_length(toks, i, sc));
        consider(self.match_count(toks, i, sc));
        consider(self.match_person(toks, i));
        consider(self.match_org(toks, i));
        consider(self.match_designation(toks, i, sc));
        consider(self.match_gazetteer(&self.places, toks, i, EntityCategory::Plc, 40));
        consider(self.match_gazetteer(&self.products, toks, i, EntityCategory::Prod, 50));
        consider(self.match_gazetteer(&self.objects, toks, i, EntityCategory::Obj, 60));
        best
    }

    /// Longest gazetteer match starting at `i` (case-preserving): one
    /// incremental trie walk over the candidate run, no key strings. The
    /// walk dying mid-token proves no longer entry can match either.
    fn match_gazetteer<S: Toks + ?Sized>(
        &self,
        g: &Gazetteer,
        toks: &S,
        i: usize,
        category: EntityCategory,
        priority: u8,
    ) -> Option<Candidate> {
        let max = g.max_len().min(toks.len() - i);
        let mut walk = g.walk();
        let mut found: Option<usize> = None;
        for len in 1..=max {
            if len > 1 && !walk.sep() {
                break;
            }
            if !walk.token(toks.text(i + len - 1)) {
                break;
            }
            if walk.matched() {
                found = Some(len);
            }
        }
        found.map(|token_len| Candidate {
            category,
            token_len,
            priority,
        })
    }

    /// Same, but case-folded (designations are stored lowercase).
    fn match_designation<S: Toks + ?Sized>(
        &self,
        toks: &S,
        i: usize,
        sc: &mut String,
    ) -> Option<Candidate> {
        let g = &self.designations;
        let max = g.max_len().min(toks.len() - i);
        let mut walk = g.walk();
        let mut found: Option<usize> = None;
        for len in 1..=max {
            if len > 1 && !walk.sep() {
                break;
            }
            if !walk.token_folded(toks.text(i + len - 1), sc) {
                break;
            }
            if walk.matched() {
                found = Some(len);
            }
        }
        found.map(|token_len| Candidate {
            category: EntityCategory::Desig,
            token_len,
            priority: 30,
        })
    }

    fn match_currency<S: Toks + ?Sized>(
        &self,
        toks: &S,
        i: usize,
        sc: &mut String,
    ) -> Option<Candidate> {
        let n = toks.len();
        let text = toks.text(i);
        // Symbol form: $ 160 [million], or the range "$5-7 million"
        // (tokenized as $ , 5-7, million — the hyphenated number run).
        if CURRENCY_SYMBOLS.contains(&text) {
            if i + 1 >= n {
                return None;
            }
            let num = toks.text(i + 1);
            let numeric_range = num.contains('-')
                && num
                    .split('-')
                    .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()));
            if toks.kind(i + 1).is_numeric() || numeric_range {
                let mut len = 2;
                if i + 2 < n && lower_in(toks.text(i + 2), SCALE_WORDS, sc) {
                    len = 3;
                }
                return Some(Candidate {
                    category: EntityCategory::Currency,
                    token_len: len,
                    priority: 1,
                });
            }
            return None;
        }
        // "Rs 5 crore", "USD 3 million".
        if lower_in(text, CURRENCY_CODES, sc) {
            if i + 1 >= n {
                return None;
            }
            if toks.kind(i + 1).is_numeric() {
                let mut len = 2;
                if i + 2 < n && lower_in(toks.text(i + 2), SCALE_WORDS, sc) {
                    len = 3;
                }
                return Some(Candidate {
                    category: EntityCategory::Currency,
                    token_len: len,
                    priority: 1,
                });
            }
        }
        // Number-first form: "160 million dollars", "5 crore rupees".
        if toks.kind(i).is_numeric() {
            let mut j = i + 1;
            if j < n && lower_in(toks.text(j), SCALE_WORDS, sc) {
                j += 1;
            }
            if j < n && lower_in(toks.text(j), gazetteer::CURRENCY_WORDS, sc) {
                return Some(Candidate {
                    category: EntityCategory::Currency,
                    token_len: j - i + 1,
                    priority: 1,
                });
            }
        }
        None
    }

    fn match_percent<S: Toks + ?Sized>(
        &self,
        toks: &S,
        i: usize,
        sc: &mut String,
    ) -> Option<Candidate> {
        if !toks.kind(i).is_numeric() || i + 1 >= toks.len() {
            return None;
        }
        let next = toks.text(i + 1);
        if next == "%" || lower_in(next, &["percent", "pct"], sc) {
            return Some(Candidate {
                category: EntityCategory::Prcnt,
                token_len: 2,
                priority: 2,
            });
        }
        // "3 percentage points" (basis-point phrasing of rate moves).
        if lower_eq(next, "percentage", sc)
            && i + 2 < toks.len()
            && lower_in(toks.text(i + 2), &["points", "point"], sc)
        {
            return Some(Candidate {
                category: EntityCategory::Prcnt,
                token_len: 3,
                priority: 2,
            });
        }
        None
    }

    fn match_time<S: Toks + ?Sized>(
        &self,
        toks: &S,
        i: usize,
        sc: &mut String,
    ) -> Option<Candidate> {
        let n = toks.len();
        // Named times of day.
        if lower_in(toks.text(i), &["noon", "midnight"], sc) {
            return Some(Candidate {
                category: EntityCategory::Tim,
                token_len: 1,
                priority: 3,
            });
        }
        if !toks.kind(i).is_numeric() {
            return None;
        }
        // "4 p.m." — tokenizer yields ["4","p",".","m","."] or "4 pm".
        if i + 1 < n {
            let next = toks.text(i + 1);
            if lower_in(next, &["am", "pm"], sc) {
                return Some(Candidate {
                    category: EntityCategory::Tim,
                    token_len: 2,
                    priority: 3,
                });
            }
            if (lower_eq(next, "a", sc) || lower_eq(next, "p", sc))
                && i + 3 < n
                && toks.text(i + 2) == "."
                && lower_eq(toks.text(i + 3), "m", sc)
            {
                let len = if i + 4 < n && toks.text(i + 4) == "." {
                    5
                } else {
                    4
                };
                return Some(Candidate {
                    category: EntityCategory::Tim,
                    token_len: len,
                    priority: 3,
                });
            }
            // HH:MM
            if next == ":"
                && i + 2 < n
                && toks.kind(i + 2) == TokenKind::Number
                && toks.start(i + 1) == toks.end(i)
            {
                return Some(Candidate {
                    category: EntityCategory::Tim,
                    token_len: 3,
                    priority: 3,
                });
            }
        }
        None
    }

    fn match_period<S: Toks + ?Sized>(
        &self,
        toks: &S,
        i: usize,
        sc: &mut String,
    ) -> Option<Candidate> {
        let n = toks.len();
        let text = toks.text(i);
        // Quarter shorthand: "Q3", "Q4 2005", "H1 2006".
        if text.len() == 2
            && (text.starts_with('Q') || text.starts_with('H'))
            && text[1..].chars().all(|c| c.is_ascii_digit())
        {
            let len = if i + 1 < n && is_year(toks.text(i + 1)) {
                2
            } else {
                1
            };
            return Some(Candidate {
                category: EntityCategory::Period,
                token_len: len,
                priority: 4,
            });
        }
        // Month [day] [, year] / Month year.
        if gazetteer::MONTHS.contains(&text) {
            let mut len = 1;
            if i + 1 < n {
                let day = toks.text(i + 1);
                // A day-of-month ("April 12") or a year ("April 2004").
                if toks.kind(i + 1) == TokenKind::Number && (day.len() <= 2 || is_year(day)) {
                    len = 2;
                }
            }
            // Optional ", 2004" after a day.
            if len == 2
                && i + 3 < n
                && toks.text(i + 2) == ","
                && is_year(toks.text(i + 3))
            {
                len = 4;
            }
            return Some(Candidate {
                category: EntityCategory::Period,
                token_len: len,
                priority: 4,
            });
        }
        if gazetteer::WEEKDAYS.contains(&text) {
            return Some(Candidate {
                category: EntityCategory::Period,
                token_len: 1,
                priority: 4,
            });
        }
        // "fourth quarter", "last year", "this week", "fiscal 2004".
        if lower_in(text, PERIOD_HEADS, sc) && i + 1 < n {
            let next = toks.text(i + 1);
            if lower_in(next, gazetteer::PERIOD_WORDS, sc) {
                return Some(Candidate {
                    category: EntityCategory::Period,
                    token_len: 2,
                    priority: 4,
                });
            }
            if lower_eq(text, "fiscal", sc) && is_year(next) {
                return Some(Candidate {
                    category: EntityCategory::Period,
                    token_len: 2,
                    priority: 4,
                });
            }
        }
        // Ordinal + quarter: "4th quarter".
        if toks.kind(i) == TokenKind::Ordinal
            && i + 1 < n
            && lower_in(toks.text(i + 1), gazetteer::PERIOD_WORDS, sc)
        {
            return Some(Candidate {
                category: EntityCategory::Period,
                token_len: 2,
                priority: 4,
            });
        }
        None
    }

    fn match_year<S: Toks + ?Sized>(&self, toks: &S, i: usize) -> Option<Candidate> {
        if toks.kind(i) == TokenKind::Number && is_year(toks.text(i)) {
            return Some(Candidate {
                category: EntityCategory::Year,
                token_len: 1,
                priority: 10, // any longer/earlier rule (date, currency) wins
            });
        }
        None
    }

    fn match_length<S: Toks + ?Sized>(
        &self,
        toks: &S,
        i: usize,
        sc: &mut String,
    ) -> Option<Candidate> {
        if !toks.kind(i).is_numeric() || i + 1 >= toks.len() {
            return None;
        }
        if lower_in(toks.text(i + 1), gazetteer::UNITS, sc) {
            return Some(Candidate {
                category: EntityCategory::Lngth,
                token_len: 2,
                priority: 5,
            });
        }
        None
    }

    fn match_count<S: Toks + ?Sized>(
        &self,
        toks: &S,
        i: usize,
        sc: &mut String,
    ) -> Option<Candidate> {
        let text = toks.text(i);
        // Digit + count noun: "5,000 employees".
        if toks.kind(i).is_numeric()
            && !is_year(text)
            && i + 1 < toks.len()
            && lower_in(toks.text(i + 1), COUNT_NOUNS, sc)
        {
            return Some(Candidate {
                category: EntityCategory::Cnt,
                token_len: 2,
                priority: 6,
            });
        }
        // Spelled number + count noun: "three subsidiaries".
        if lower_in(text, gazetteer::NUMBER_WORDS, sc)
            && i + 1 < toks.len()
            && lower_in(toks.text(i + 1), COUNT_NOUNS, sc)
        {
            return Some(Candidate {
                category: EntityCategory::Cnt,
                token_len: 2,
                priority: 6,
            });
        }
        None
    }

    fn match_person<S: Toks + ?Sized>(&self, toks: &S, i: usize) -> Option<Candidate> {
        let n = toks.len();
        let text = toks.text(i);
        // Honorific (+ .) + capitalised run.
        if HONORIFICS.contains(&text) {
            let mut j = i + 1;
            if j < n && toks.text(j) == "." {
                j += 1;
            }
            let mut namelen = 0usize;
            while namelen < 3 && j + namelen < n {
                let k = j + namelen;
                if toks.capitalized(k) && !self.is_nonperson_capital(toks.text(k)) {
                    namelen += 1;
                } else {
                    break;
                }
            }
            if namelen > 0 {
                return Some(Candidate {
                    category: EntityCategory::Prsn,
                    token_len: j + namelen - i,
                    priority: 7,
                });
            }
            return None;
        }
        if !toks.capitalized(i) {
            return None;
        }
        let is_given = self.given_names.contains(text);
        let is_surname = self.surnames.contains(text);
        if is_given {
            // Given [Middle-initial .] Surname / Given Capitalised.
            let mut j = i + 1;
            if j < n
                && toks.text(j).chars().count() == 1
                && toks.capitalized(j)
                && j + 1 < n
                && toks.text(j + 1) == "."
            {
                j += 2;
            }
            if j < n && toks.capitalized(j) && !self.is_nonperson_capital(toks.text(j)) {
                return Some(Candidate {
                    category: EntityCategory::Prsn,
                    token_len: j + 1 - i,
                    priority: 7,
                });
            }
            // Lone given name is a weak person mention.
            return Some(Candidate {
                category: EntityCategory::Prsn,
                token_len: 1,
                priority: 25,
            });
        }
        if is_surname {
            return Some(Candidate {
                category: EntityCategory::Prsn,
                token_len: 1,
                priority: 26,
            });
        }
        None
    }

    /// A capitalised token that should never be absorbed into a person
    /// name (known org/place/month, org suffix).
    fn is_nonperson_capital(&self, text: &str) -> bool {
        self.orgs.contains(text)
            || self.places.contains(text)
            || self.org_suffixes.contains(text)
            || gazetteer::MONTHS.contains(&text)
            || gazetteer::WEEKDAYS.contains(&text)
    }

    fn match_org<S: Toks + ?Sized>(&self, toks: &S, i: usize) -> Option<Candidate> {
        let n = toks.len();
        // Gazetteer orgs (longest match).
        let gaz = self.match_gazetteer(&self.orgs, toks, i, EntityCategory::Org, 20);
        // Unknown capitalised run ending in an org suffix: "Zenlith
        // Systems Inc." — up to 4 tokens + suffix (+ optional dot).
        let mut suffix_match: Option<Candidate> = None;
        if toks.capitalized(i) {
            let mut run = 1usize;
            while run < 6 && i + run < n {
                let k = i + run;
                if !toks.capitalized(k) {
                    break;
                }
                if self.org_suffixes.contains(toks.text(k)) {
                    let mut len = run + 1;
                    // Absorb abbreviation dot: "Inc."
                    if i + len < n
                        && toks.text(i + len) == "."
                        && toks.start(i + len) == toks.end(i + len - 1)
                    {
                        len += 1;
                    }
                    // Keep the longest suffix-terminated run:
                    // "Zenlith Systems Inc." beats "Zenlith Systems".
                    suffix_match = Some(Candidate {
                        category: EntityCategory::Org,
                        token_len: len,
                        priority: 8,
                    });
                }
                run += 1;
            }
            // A leading org-suffix word alone ("Group said") is not an org.
        }
        match (gaz, suffix_match) {
            (Some(a), Some(b)) => Some(if b.token_len > a.token_len { b } else { a }),
            (a, b) => a.or(b),
        }
    }
}

/// Is `text` a plausible year literal (1900–2099)?
fn is_year(text: &str) -> bool {
    text.len() == 4
        && text.starts_with("19") | text.starts_with("20")
        && text.bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ner() -> NamedEntityRecognizer {
        NamedEntityRecognizer::new()
    }

    fn cats(text: &str) -> Vec<(EntityCategory, &str)> {
        ner().recognize_text(text)
    }

    fn has(text: &str, cat: EntityCategory, surface: &str) -> bool {
        cats(text).iter().any(|(c, s)| *c == cat && *s == surface)
    }

    #[test]
    fn currency_symbol_forms() {
        assert!(has(
            "IBM paid $160 million for it",
            EntityCategory::Currency,
            "$160 million"
        ));
        assert!(has("a fee of $42", EntityCategory::Currency, "$42"));
        assert!(has(
            "Rs 500 crore deal",
            EntityCategory::Currency,
            "Rs 500 crore"
        ));
    }

    #[test]
    fn currency_word_forms() {
        assert!(has(
            "worth 160 million dollars today",
            EntityCategory::Currency,
            "160 million dollars"
        ));
    }

    #[test]
    fn percent_forms() {
        assert!(has(
            "revenue grew 10 % in Q4",
            EntityCategory::Prcnt,
            "10 %"
        ));
        assert!(has(
            "a 5.3 percent rise",
            EntityCategory::Prcnt,
            "5.3 percent"
        ));
    }

    #[test]
    fn year_and_period() {
        assert!(has(
            "profits of 1996 were flat",
            EntityCategory::Year,
            "1996"
        ));
        assert!(has(
            "the deal closed in April 2004",
            EntityCategory::Period,
            "April 2004"
        ));
        assert!(has("announced on Monday", EntityCategory::Period, "Monday"));
        assert!(has(
            "in the fourth quarter",
            EntityCategory::Period,
            "fourth quarter"
        ));
        assert!(has(
            "results for fiscal 2005",
            EntityCategory::Period,
            "fiscal 2005"
        ));
    }

    #[test]
    fn date_with_day_and_year() {
        assert!(has(
            "signed on April 12, 2004 in Delhi",
            EntityCategory::Period,
            "April 12, 2004"
        ));
    }

    #[test]
    fn time_expressions() {
        assert!(has("the call is at 4 pm", EntityCategory::Tim, "4 pm"));
        assert!(has("opens at 09:30 sharp", EntityCategory::Tim, "09:30"));
        assert!(has("closes at 4 p.m. today", EntityCategory::Tim, "4 p.m."));
    }

    #[test]
    fn length_and_count() {
        assert!(has("a 5 km pipeline", EntityCategory::Lngth, "5 km"));
        assert!(has(
            "added 40 gigabytes of storage",
            EntityCategory::Lngth,
            "40 gigabytes"
        ));
        assert!(has(
            "hired 5,000 employees",
            EntityCategory::Cnt,
            "5,000 employees"
        ));
        assert!(has(
            "opened three subsidiaries",
            EntityCategory::Cnt,
            "three subsidiaries"
        ));
    }

    #[test]
    fn person_forms() {
        assert!(has(
            "Mr. Andersen resigned",
            EntityCategory::Prsn,
            "Mr. Andersen"
        ));
        assert!(has(
            "James Wilson joined the board",
            EntityCategory::Prsn,
            "James Wilson"
        ));
        assert!(has(
            "John F. Kennedy spoke",
            EntityCategory::Prsn,
            "John F. Kennedy"
        ));
    }

    #[test]
    fn organizations() {
        assert!(has("IBM acquired Daksh", EntityCategory::Org, "IBM"));
        assert!(has("IBM acquired Daksh", EntityCategory::Org, "Daksh"));
        assert!(has(
            "Bank of America said",
            EntityCategory::Org,
            "Bank of America"
        ));
        // Unknown name + suffix.
        assert!(has(
            "Zenlith Systems Inc. announced",
            EntityCategory::Org,
            "Zenlith Systems Inc."
        ));
    }

    #[test]
    fn designations_case_insensitive() {
        assert!(has(
            "was named CEO of the firm",
            EntityCategory::Desig,
            "CEO"
        ));
        assert!(has(
            "the new chief executive officer",
            EntityCategory::Desig,
            "chief executive officer"
        ));
        assert!(has(
            "a Vice President at Oracle",
            EntityCategory::Desig,
            "Vice President"
        ));
    }

    #[test]
    fn places_and_products() {
        assert!(has("based in Bangalore", EntityCategory::Plc, "Bangalore"));
        assert!(has("moved to New York", EntityCategory::Plc, "New York"));
        assert!(has("the ThinkPad line", EntityCategory::Prod, "ThinkPad"));
    }

    #[test]
    fn objects() {
        assert!(has("the Nasdaq fell", EntityCategory::Obj, "Nasdaq"));
    }

    #[test]
    fn longest_match_wins() {
        // "New York" must be one PLC, not PRSN("New")+... etc.
        let got = cats("offices in New York City Monday");
        assert!(got
            .iter()
            .any(|(c, s)| *c == EntityCategory::Plc && *s == "New York"));
    }

    #[test]
    fn date_beats_bare_year() {
        let got = cats("in April 2004");
        // The PERIOD span should absorb the year.
        assert!(got
            .iter()
            .any(|(c, s)| *c == EntityCategory::Period && *s == "April 2004"));
        assert!(!got.iter().any(|(c, _)| *c == EntityCategory::Year));
    }

    #[test]
    fn unknown_capitalized_word_left_unannotated() {
        let got = cats("Qwzx announced gains");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn spans_are_disjoint_and_ordered() {
        let text = "IBM paid $160 million for Daksh in April 2004, said Mr. Palmisano, CEO of IBM, in Bangalore.";
        let toks = tokenize(text);
        let spans = ner().recognize(&toks);
        for w in spans.windows(2) {
            assert!(w[0].first_token + w[0].token_len <= w[1].first_token);
        }
        assert!(spans.len() >= 6, "{spans:?}");
    }

    #[test]
    fn runtime_extension() {
        let mut n = ner();
        assert!(n.recognize_text("Frobnicate announced").is_empty());
        n.add_organization("Frobnicate");
        assert!(n
            .recognize_text("Frobnicate announced")
            .iter()
            .any(|(c, s)| *c == EntityCategory::Org && *s == "Frobnicate"));
    }

    #[test]
    fn quarter_shorthand_and_named_times() {
        assert!(has(
            "results for Q3 were flat",
            EntityCategory::Period,
            "Q3"
        ));
        assert!(has(
            "guidance for Q4 2005 rose",
            EntityCategory::Period,
            "Q4 2005"
        ));
        assert!(has("the call starts at noon", EntityCategory::Tim, "noon"));
        assert!(has(
            "servers restart at midnight",
            EntityCategory::Tim,
            "midnight"
        ));
    }

    #[test]
    fn percentage_points_and_currency_ranges() {
        assert!(has(
            "margins rose 3 percentage points",
            EntityCategory::Prcnt,
            "3 percentage points"
        ));
        assert!(has(
            "a deal worth $5-7 million",
            EntityCategory::Currency,
            "$5-7 million"
        ));
    }

    #[test]
    fn is_year_bounds() {
        assert!(is_year("1996"));
        assert!(is_year("2004"));
        assert!(!is_year("1896"));
        assert!(!is_year("210"));
        assert!(!is_year("21000"));
        assert!(!is_year("20a4"));
    }

    #[test]
    fn recognize_into_matches_recognize() {
        use etap_text::tokenize_into;
        let texts = [
            "IBM paid $160 million for Daksh in April 2004, said Mr. Palmisano, CEO of IBM.",
            "Bank of America opened 40 offices in New York City on Monday at 09:30.",
            "Société Générale gained 5.3 percent in Q3 2005.",
            "Zenlith Systems Inc. hired 5,000 employees for three subsidiaries.",
        ];
        let n = ner();
        let mut spans = Vec::new();
        let mut out = Vec::new();
        let mut scratch = String::new();
        for text in texts {
            let toks = tokenize(text);
            let expect = n.recognize(&toks);
            tokenize_into(text, &mut spans);
            n.recognize_into(text, &spans, &mut scratch, &mut out);
            assert_eq!(out, expect, "mismatch on {text:?}");
        }
    }
}
