//! Named-entity recognition.
//!
//! A rule + gazetteer recognizer that emits the paper's 13 entity
//! categories over a token stream. The matcher scans left to right; at
//! every position it collects candidate matches from all rules and keeps
//! the *longest* one (ties broken by rule priority), then jumps past it —
//! the standard longest-match span-resolution strategy.
//!
//! Rule inventory (priority order within equal lengths):
//!
//! | rule | category |
//! |------|----------|
//! | currency symbol/word + figure (+ scale word) | CURRENCY |
//! | figure + `%` / `percent` | PRCNT |
//! | figure + `a.m.`/`p.m.` or `HH:MM` | TIM |
//! | month (+ day) (+ year), weekday, ordinal + `quarter` | PERIOD |
//! | bare 19xx/20xx figure | YEAR |
//! | figure + measurement unit | LNGTH |
//! | figure + plural noun, spelled-out numbers | CNT |
//! | honorific + capitalised run, given-name + surname | PRSN |
//! | org gazetteer, capitalised run + org suffix | ORG |
//! | designation lexicon (case-insensitive) | DESIG |
//! | place gazetteer | PLC |
//! | product gazetteer | PROD |
//! | object gazetteer | OBJ |
//!
//! Unknown capitalised words that match no rule are deliberately left
//! unannotated (they surface as `np` POS tokens downstream) — this is the
//! realistic imperfection the paper's §6 discusses.

use crate::entity::{EntityCategory, EntitySpan};
use crate::gazetteer::{self, Gazetteer};
use etap_text::{tokenize, Token, TokenKind};

/// A candidate match produced by one rule at one position.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    category: EntityCategory,
    token_len: usize,
    /// Lower value wins among equal lengths.
    priority: u8,
}

/// Gazetteer- and rule-based NER for the 13 ETAP categories.
#[derive(Debug, Clone)]
pub struct NamedEntityRecognizer {
    orgs: Gazetteer,
    places: Gazetteer,
    products: Gazetteer,
    objects: Gazetteer,
    given_names: Gazetteer,
    surnames: Gazetteer,
    designations: Gazetteer,
    org_suffixes: Gazetteer,
}

impl Default for NamedEntityRecognizer {
    fn default() -> Self {
        Self {
            orgs: normalized(gazetteer::ORGANIZATIONS, false),
            places: normalized(gazetteer::PLACES, false),
            products: normalized(gazetteer::PRODUCTS, false),
            objects: normalized(gazetteer::OBJECTS, false),
            given_names: normalized(gazetteer::GIVEN_NAMES, false),
            surnames: normalized(gazetteer::SURNAMES, false),
            designations: normalized(gazetteer::DESIGNATIONS, true),
            org_suffixes: normalized(gazetteer::ORG_SUFFIXES, false),
        }
    }
}

/// Tokenize each entry and join with single spaces so that gazetteer keys
/// match the token stream exactly (e.g. `J. P. Morgan` → `J . P . Morgan`).
fn normalized(entries: &[&str], lowercase: bool) -> Gazetteer {
    let mut g = Gazetteer::default();
    for e in entries {
        let joined = join_tokens(e, lowercase);
        if !joined.is_empty() {
            g.insert(&joined);
        }
    }
    g
}

fn join_tokens(text: &str, lowercase: bool) -> String {
    let toks = tokenize(text);
    let mut s = String::with_capacity(text.len());
    for (i, t) in toks.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        if lowercase {
            s.push_str(&t.lower());
        } else {
            s.push_str(t.text);
        }
    }
    s
}

const HONORIFICS: &[&str] = &["Mr", "Mrs", "Ms", "Dr", "Prof", "Sir", "Madam"];
const SCALE_WORDS: &[&str] = &[
    "million", "billion", "trillion", "thousand", "crore", "lakh", "m", "bn",
];
const CURRENCY_SYMBOLS: &[&str] = &["$", "€", "£", "¥", "₹"];
const COUNT_NOUNS: &[&str] = &[
    "employees",
    "people",
    "workers",
    "staff",
    "stores",
    "offices",
    "branches",
    "customers",
    "subscribers",
    "users",
    "units",
    "shares",
    "subsidiaries",
    "plants",
    "factories",
    "countries",
    "cities",
    "products",
    "patents",
    "clients",
    "members",
    "engineers",
];

impl NamedEntityRecognizer {
    /// Create a recognizer with the built-in gazetteers.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an organization name at runtime (e.g. from a domain list).
    pub fn add_organization(&mut self, name: &str) {
        let j = join_tokens(name, false);
        self.orgs.insert(&j);
    }

    /// Add a person's given name.
    pub fn add_given_name(&mut self, name: &str) {
        self.given_names.insert(&join_tokens(name, false));
    }

    /// Add a surname.
    pub fn add_surname(&mut self, name: &str) {
        self.surnames.insert(&join_tokens(name, false));
    }

    /// Add a place name.
    pub fn add_place(&mut self, name: &str) {
        self.places.insert(&join_tokens(name, false));
    }

    /// Add a product name.
    pub fn add_product(&mut self, name: &str) {
        self.products.insert(&join_tokens(name, false));
    }

    /// Recognize entities in pre-tokenized text.
    #[must_use]
    pub fn recognize(&self, tokens: &[Token<'_>]) -> Vec<EntitySpan> {
        let mut spans = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            if let Some(best) = self.best_candidate(tokens, i) {
                let last = i + best.token_len - 1;
                spans.push(EntitySpan {
                    category: best.category,
                    first_token: i,
                    token_len: best.token_len,
                    start: tokens[i].start,
                    end: tokens[last].end,
                });
                i += best.token_len;
            } else {
                i += 1;
            }
        }
        spans
    }

    /// Convenience: tokenize and recognize in one call.
    #[must_use]
    pub fn recognize_text(&self, text: &str) -> Vec<(EntityCategory, String)> {
        let tokens = tokenize(text);
        self.recognize(&tokens)
            .into_iter()
            .map(|s| (s.category, text[s.start..s.end].to_string()))
            .collect()
    }

    fn best_candidate(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        let mut best: Option<Candidate> = None;
        let mut consider = |c: Option<Candidate>| {
            if let Some(c) = c {
                best = match best {
                    None => Some(c),
                    Some(b)
                        if c.token_len > b.token_len
                            || (c.token_len == b.token_len && c.priority < b.priority) =>
                    {
                        Some(c)
                    }
                    b => b,
                };
            }
        };
        consider(self.match_currency(tokens, i));
        consider(self.match_percent(tokens, i));
        consider(self.match_time(tokens, i));
        consider(self.match_period(tokens, i));
        consider(self.match_year(tokens, i));
        consider(self.match_length(tokens, i));
        consider(self.match_count(tokens, i));
        consider(self.match_person(tokens, i));
        consider(self.match_org(tokens, i));
        consider(self.match_designation(tokens, i));
        consider(self.match_gazetteer(&self.places, tokens, i, EntityCategory::Plc, 40));
        consider(self.match_gazetteer(&self.products, tokens, i, EntityCategory::Prod, 50));
        consider(self.match_gazetteer(&self.objects, tokens, i, EntityCategory::Obj, 60));
        best
    }

    /// Longest gazetteer match starting at `i` (case-preserving key).
    fn match_gazetteer(
        &self,
        g: &Gazetteer,
        tokens: &[Token<'_>],
        i: usize,
        category: EntityCategory,
        priority: u8,
    ) -> Option<Candidate> {
        let max = g.max_len().min(tokens.len() - i);
        let mut key = String::new();
        let mut found: Option<usize> = None;
        for len in 1..=max {
            if len > 1 {
                key.push(' ');
            }
            key.push_str(tokens[i + len - 1].text);
            if g.contains(&key) {
                found = Some(len);
            }
        }
        found.map(|token_len| Candidate {
            category,
            token_len,
            priority,
        })
    }

    /// Same, but lowercase keys (designations).
    fn match_designation(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        let g = &self.designations;
        let max = g.max_len().min(tokens.len() - i);
        let mut key = String::new();
        let mut found: Option<usize> = None;
        for len in 1..=max {
            if len > 1 {
                key.push(' ');
            }
            key.push_str(&tokens[i + len - 1].lower());
            if g.contains(&key) {
                found = Some(len);
            }
        }
        found.map(|token_len| Candidate {
            category: EntityCategory::Desig,
            token_len,
            priority: 30,
        })
    }

    fn match_currency(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        let t = &tokens[i];
        // Symbol form: $ 160 [million], or the range "$5-7 million"
        // (tokenized as $ , 5-7, million — the hyphenated number run).
        if CURRENCY_SYMBOLS.contains(&t.text) {
            let num = tokens.get(i + 1)?;
            let numeric_range = num.text.contains('-')
                && num
                    .text
                    .split('-')
                    .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()));
            if num.kind.is_numeric() || numeric_range {
                let mut len = 2;
                if let Some(scale) = tokens.get(i + 2) {
                    if SCALE_WORDS.contains(&scale.lower().as_ref()) {
                        len = 3;
                    }
                }
                return Some(Candidate {
                    category: EntityCategory::Currency,
                    token_len: len,
                    priority: 1,
                });
            }
            return None;
        }
        // "Rs 5 crore", "USD 3 million".
        let lower = t.lower();
        if matches!(&*lower, "rs" | "usd" | "eur" | "gbp" | "inr" | "jpy") {
            let num = tokens.get(i + 1)?;
            if num.kind.is_numeric() {
                let mut len = 2;
                if let Some(scale) = tokens.get(i + 2) {
                    if SCALE_WORDS.contains(&scale.lower().as_ref()) {
                        len = 3;
                    }
                }
                return Some(Candidate {
                    category: EntityCategory::Currency,
                    token_len: len,
                    priority: 1,
                });
            }
        }
        // Number-first form: "160 million dollars", "5 crore rupees".
        if t.kind.is_numeric() {
            let mut j = i + 1;
            if let Some(scale) = tokens.get(j) {
                if SCALE_WORDS.contains(&scale.lower().as_ref()) {
                    j += 1;
                }
            }
            if let Some(cur) = tokens.get(j) {
                if gazetteer::CURRENCY_WORDS.contains(&cur.lower().as_ref()) {
                    return Some(Candidate {
                        category: EntityCategory::Currency,
                        token_len: j - i + 1,
                        priority: 1,
                    });
                }
            }
        }
        None
    }

    fn match_percent(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        let t = &tokens[i];
        if !t.kind.is_numeric() {
            return None;
        }
        let next = tokens.get(i + 1)?;
        if next.text == "%" || matches!(next.lower().as_ref(), "percent" | "pct") {
            return Some(Candidate {
                category: EntityCategory::Prcnt,
                token_len: 2,
                priority: 2,
            });
        }
        // "3 percentage points" (basis-point phrasing of rate moves).
        if next.lower() == "percentage"
            && tokens
                .get(i + 2)
                .is_some_and(|p| matches!(p.lower().as_ref(), "points" | "point"))
        {
            return Some(Candidate {
                category: EntityCategory::Prcnt,
                token_len: 3,
                priority: 2,
            });
        }
        None
    }

    fn match_time(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        let t = &tokens[i];
        // Named times of day.
        if matches!(t.lower().as_ref(), "noon" | "midnight") {
            return Some(Candidate {
                category: EntityCategory::Tim,
                token_len: 1,
                priority: 3,
            });
        }
        if !t.kind.is_numeric() {
            return None;
        }
        // "4 p.m." — tokenizer yields ["4","p",".","m","."] or "4 pm".
        if let Some(next) = tokens.get(i + 1) {
            let nl = next.lower();
            if matches!(&*nl, "am" | "pm") {
                return Some(Candidate {
                    category: EntityCategory::Tim,
                    token_len: 2,
                    priority: 3,
                });
            }
            if (nl == "a" || nl == "p")
                && tokens.get(i + 2).is_some_and(|d| d.text == ".")
                && tokens.get(i + 3).is_some_and(|m| m.lower() == "m")
            {
                let len = if tokens.get(i + 4).is_some_and(|d| d.text == ".") {
                    5
                } else {
                    4
                };
                return Some(Candidate {
                    category: EntityCategory::Tim,
                    token_len: len,
                    priority: 3,
                });
            }
            // HH:MM
            if next.text == ":"
                && tokens
                    .get(i + 2)
                    .is_some_and(|m| m.kind == TokenKind::Number)
                && next.start == t.end
            {
                return Some(Candidate {
                    category: EntityCategory::Tim,
                    token_len: 3,
                    priority: 3,
                });
            }
        }
        None
    }

    fn match_period(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        let t = &tokens[i];
        // Quarter shorthand: "Q3", "Q4 2005", "H1 2006".
        if t.text.len() == 2
            && (t.text.starts_with('Q') || t.text.starts_with('H'))
            && t.text[1..].chars().all(|c| c.is_ascii_digit())
        {
            let len = if tokens.get(i + 1).is_some_and(|y| is_year(y.text)) {
                2
            } else {
                1
            };
            return Some(Candidate {
                category: EntityCategory::Period,
                token_len: len,
                priority: 4,
            });
        }
        // Month [day] [, year] / Month year.
        if gazetteer::MONTHS.contains(&t.text) {
            let mut len = 1;
            if let Some(day) = tokens.get(i + 1) {
                // A day-of-month ("April 12") or a year ("April 2004").
                if day.kind == TokenKind::Number && (day.text.len() <= 2 || is_year(day.text)) {
                    len = 2;
                }
            }
            // Optional ", 2004" after a day.
            if len == 2 && tokens.get(i + 2).is_some_and(|c| c.text == ",") {
                if let Some(y) = tokens.get(i + 3) {
                    if is_year(y.text) {
                        len = 4;
                    }
                }
            }
            return Some(Candidate {
                category: EntityCategory::Period,
                token_len: len,
                priority: 4,
            });
        }
        if gazetteer::WEEKDAYS.contains(&t.text) {
            return Some(Candidate {
                category: EntityCategory::Period,
                token_len: 1,
                priority: 4,
            });
        }
        // "fourth quarter", "last year", "this week", "fiscal 2004".
        let lower = t.lower();
        if matches!(
            &*lower,
            "first"
                | "second"
                | "third"
                | "fourth"
                | "last"
                | "next"
                | "this"
                | "current"
                | "previous"
                | "fiscal"
        ) {
            if let Some(next) = tokens.get(i + 1) {
                let nl = next.lower();
                if gazetteer::PERIOD_WORDS.contains(&&*nl) {
                    return Some(Candidate {
                        category: EntityCategory::Period,
                        token_len: 2,
                        priority: 4,
                    });
                }
                if lower == "fiscal" && is_year(next.text) {
                    return Some(Candidate {
                        category: EntityCategory::Period,
                        token_len: 2,
                        priority: 4,
                    });
                }
            }
        }
        // Ordinal + quarter: "4th quarter".
        if t.kind == TokenKind::Ordinal {
            if let Some(next) = tokens.get(i + 1) {
                if gazetteer::PERIOD_WORDS.contains(&next.lower().as_ref()) {
                    return Some(Candidate {
                        category: EntityCategory::Period,
                        token_len: 2,
                        priority: 4,
                    });
                }
            }
        }
        None
    }

    fn match_year(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        let t = &tokens[i];
        if t.kind == TokenKind::Number && is_year(t.text) {
            return Some(Candidate {
                category: EntityCategory::Year,
                token_len: 1,
                priority: 10, // any longer/earlier rule (date, currency) wins
            });
        }
        None
    }

    fn match_length(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        let t = &tokens[i];
        if !t.kind.is_numeric() {
            return None;
        }
        let next = tokens.get(i + 1)?;
        if gazetteer::UNITS.contains(&next.lower().as_ref()) {
            return Some(Candidate {
                category: EntityCategory::Lngth,
                token_len: 2,
                priority: 5,
            });
        }
        None
    }

    fn match_count(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        let t = &tokens[i];
        // Digit + count noun: "5,000 employees".
        if t.kind.is_numeric() && !is_year(t.text) {
            if let Some(next) = tokens.get(i + 1) {
                if COUNT_NOUNS.contains(&next.lower().as_ref()) {
                    return Some(Candidate {
                        category: EntityCategory::Cnt,
                        token_len: 2,
                        priority: 6,
                    });
                }
            }
        }
        // Spelled number + count noun: "three subsidiaries".
        if gazetteer::NUMBER_WORDS.contains(&t.lower().as_ref()) {
            if let Some(next) = tokens.get(i + 1) {
                if COUNT_NOUNS.contains(&next.lower().as_ref()) {
                    return Some(Candidate {
                        category: EntityCategory::Cnt,
                        token_len: 2,
                        priority: 6,
                    });
                }
            }
        }
        None
    }

    fn match_person(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        let t = &tokens[i];
        // Honorific (+ .) + capitalised run.
        if HONORIFICS.contains(&t.text) {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|d| d.text == ".") {
                j += 1;
            }
            let mut namelen = 0usize;
            while namelen < 3 {
                match tokens.get(j + namelen) {
                    Some(tok) if tok.is_capitalized() && !self.is_nonperson_capital(tok) => {
                        namelen += 1;
                    }
                    _ => break,
                }
            }
            if namelen > 0 {
                return Some(Candidate {
                    category: EntityCategory::Prsn,
                    token_len: j + namelen - i,
                    priority: 7,
                });
            }
            return None;
        }
        if !t.is_capitalized() {
            return None;
        }
        let is_given = self.given_names.contains(t.text);
        let is_surname = self.surnames.contains(t.text);
        if is_given {
            // Given [Middle-initial .] Surname / Given Capitalised.
            let mut j = i + 1;
            if let Some(mid) = tokens.get(j) {
                if mid.text.chars().count() == 1
                    && mid.is_capitalized()
                    && tokens.get(j + 1).is_some_and(|d| d.text == ".")
                {
                    j += 2;
                }
            }
            if let Some(next) = tokens.get(j) {
                if next.is_capitalized() && !self.is_nonperson_capital(next) {
                    return Some(Candidate {
                        category: EntityCategory::Prsn,
                        token_len: j + 1 - i,
                        priority: 7,
                    });
                }
            }
            // Lone given name is a weak person mention.
            return Some(Candidate {
                category: EntityCategory::Prsn,
                token_len: 1,
                priority: 25,
            });
        }
        if is_surname {
            return Some(Candidate {
                category: EntityCategory::Prsn,
                token_len: 1,
                priority: 26,
            });
        }
        None
    }

    /// A capitalised token that should never be absorbed into a person
    /// name (known org/place/month, org suffix).
    fn is_nonperson_capital(&self, tok: &Token<'_>) -> bool {
        self.orgs.contains(tok.text)
            || self.places.contains(tok.text)
            || self.org_suffixes.contains(tok.text)
            || gazetteer::MONTHS.contains(&tok.text)
            || gazetteer::WEEKDAYS.contains(&tok.text)
    }

    fn match_org(&self, tokens: &[Token<'_>], i: usize) -> Option<Candidate> {
        // Gazetteer orgs (longest match).
        let gaz = self.match_gazetteer(&self.orgs, tokens, i, EntityCategory::Org, 20);
        // Unknown capitalised run ending in an org suffix: "Zenlith
        // Systems Inc." — up to 4 tokens + suffix (+ optional dot).
        let t = &tokens[i];
        let mut suffix_match: Option<Candidate> = None;
        if t.is_capitalized() {
            let mut run = 1usize;
            while run < 6 {
                match tokens.get(i + run) {
                    Some(tok) if tok.is_capitalized() => {
                        if self.org_suffixes.contains(tok.text) {
                            let mut len = run + 1;
                            // Absorb abbreviation dot: "Inc."
                            if tokens.get(i + len).is_some_and(|d| {
                                d.text == "." && d.start == tokens[i + len - 1].end
                            }) {
                                len += 1;
                            }
                            // Keep the longest suffix-terminated run:
                            // "Zenlith Systems Inc." beats "Zenlith Systems".
                            suffix_match = Some(Candidate {
                                category: EntityCategory::Org,
                                token_len: len,
                                priority: 8,
                            });
                        }
                        run += 1;
                    }
                    _ => break,
                }
            }
            // A leading org-suffix word alone ("Group said") is not an org.
        }
        match (gaz, suffix_match) {
            (Some(a), Some(b)) => Some(if b.token_len > a.token_len { b } else { a }),
            (a, b) => a.or(b),
        }
    }
}

/// Is `text` a plausible year literal (1900–2099)?
fn is_year(text: &str) -> bool {
    text.len() == 4
        && text.starts_with("19") | text.starts_with("20")
        && text.bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ner() -> NamedEntityRecognizer {
        NamedEntityRecognizer::new()
    }

    fn cats(text: &str) -> Vec<(EntityCategory, String)> {
        ner().recognize_text(text)
    }

    fn has(text: &str, cat: EntityCategory, surface: &str) -> bool {
        cats(text).iter().any(|(c, s)| *c == cat && s == surface)
    }

    #[test]
    fn currency_symbol_forms() {
        assert!(has(
            "IBM paid $160 million for it",
            EntityCategory::Currency,
            "$160 million"
        ));
        assert!(has("a fee of $42", EntityCategory::Currency, "$42"));
        assert!(has(
            "Rs 500 crore deal",
            EntityCategory::Currency,
            "Rs 500 crore"
        ));
    }

    #[test]
    fn currency_word_forms() {
        assert!(has(
            "worth 160 million dollars today",
            EntityCategory::Currency,
            "160 million dollars"
        ));
    }

    #[test]
    fn percent_forms() {
        assert!(has(
            "revenue grew 10 % in Q4",
            EntityCategory::Prcnt,
            "10 %"
        ));
        assert!(has(
            "a 5.3 percent rise",
            EntityCategory::Prcnt,
            "5.3 percent"
        ));
    }

    #[test]
    fn year_and_period() {
        assert!(has(
            "profits of 1996 were flat",
            EntityCategory::Year,
            "1996"
        ));
        assert!(has(
            "the deal closed in April 2004",
            EntityCategory::Period,
            "April 2004"
        ));
        assert!(has("announced on Monday", EntityCategory::Period, "Monday"));
        assert!(has(
            "in the fourth quarter",
            EntityCategory::Period,
            "fourth quarter"
        ));
        assert!(has(
            "results for fiscal 2005",
            EntityCategory::Period,
            "fiscal 2005"
        ));
    }

    #[test]
    fn date_with_day_and_year() {
        assert!(has(
            "signed on April 12, 2004 in Delhi",
            EntityCategory::Period,
            "April 12, 2004"
        ));
    }

    #[test]
    fn time_expressions() {
        assert!(has("the call is at 4 pm", EntityCategory::Tim, "4 pm"));
        assert!(has("opens at 09:30 sharp", EntityCategory::Tim, "09:30"));
        assert!(has("closes at 4 p.m. today", EntityCategory::Tim, "4 p.m."));
    }

    #[test]
    fn length_and_count() {
        assert!(has("a 5 km pipeline", EntityCategory::Lngth, "5 km"));
        assert!(has(
            "added 40 gigabytes of storage",
            EntityCategory::Lngth,
            "40 gigabytes"
        ));
        assert!(has(
            "hired 5,000 employees",
            EntityCategory::Cnt,
            "5,000 employees"
        ));
        assert!(has(
            "opened three subsidiaries",
            EntityCategory::Cnt,
            "three subsidiaries"
        ));
    }

    #[test]
    fn person_forms() {
        assert!(has(
            "Mr. Andersen resigned",
            EntityCategory::Prsn,
            "Mr. Andersen"
        ));
        assert!(has(
            "James Wilson joined the board",
            EntityCategory::Prsn,
            "James Wilson"
        ));
        assert!(has(
            "John F. Kennedy spoke",
            EntityCategory::Prsn,
            "John F. Kennedy"
        ));
    }

    #[test]
    fn organizations() {
        assert!(has("IBM acquired Daksh", EntityCategory::Org, "IBM"));
        assert!(has("IBM acquired Daksh", EntityCategory::Org, "Daksh"));
        assert!(has(
            "Bank of America said",
            EntityCategory::Org,
            "Bank of America"
        ));
        // Unknown name + suffix.
        assert!(has(
            "Zenlith Systems Inc. announced",
            EntityCategory::Org,
            "Zenlith Systems Inc."
        ));
    }

    #[test]
    fn designations_case_insensitive() {
        assert!(has(
            "was named CEO of the firm",
            EntityCategory::Desig,
            "CEO"
        ));
        assert!(has(
            "the new chief executive officer",
            EntityCategory::Desig,
            "chief executive officer"
        ));
        assert!(has(
            "a Vice President at Oracle",
            EntityCategory::Desig,
            "Vice President"
        ));
    }

    #[test]
    fn places_and_products() {
        assert!(has("based in Bangalore", EntityCategory::Plc, "Bangalore"));
        assert!(has("moved to New York", EntityCategory::Plc, "New York"));
        assert!(has("the ThinkPad line", EntityCategory::Prod, "ThinkPad"));
    }

    #[test]
    fn objects() {
        assert!(has("the Nasdaq fell", EntityCategory::Obj, "Nasdaq"));
    }

    #[test]
    fn longest_match_wins() {
        // "New York" must be one PLC, not PRSN("New")+... etc.
        let got = cats("offices in New York City Monday");
        assert!(got
            .iter()
            .any(|(c, s)| *c == EntityCategory::Plc && s == "New York"));
    }

    #[test]
    fn date_beats_bare_year() {
        let got = cats("in April 2004");
        // The PERIOD span should absorb the year.
        assert!(got
            .iter()
            .any(|(c, s)| *c == EntityCategory::Period && s == "April 2004"));
        assert!(!got.iter().any(|(c, _)| *c == EntityCategory::Year));
    }

    #[test]
    fn unknown_capitalized_word_left_unannotated() {
        let got = cats("Qwzx announced gains");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn spans_are_disjoint_and_ordered() {
        let text = "IBM paid $160 million for Daksh in April 2004, said Mr. Palmisano, CEO of IBM, in Bangalore.";
        let toks = tokenize(text);
        let spans = ner().recognize(&toks);
        for w in spans.windows(2) {
            assert!(w[0].first_token + w[0].token_len <= w[1].first_token);
        }
        assert!(spans.len() >= 6, "{spans:?}");
    }

    #[test]
    fn runtime_extension() {
        let mut n = ner();
        assert!(n.recognize_text("Frobnicate announced").is_empty());
        n.add_organization("Frobnicate");
        assert!(n
            .recognize_text("Frobnicate announced")
            .iter()
            .any(|(c, s)| *c == EntityCategory::Org && s == "Frobnicate"));
    }

    #[test]
    fn quarter_shorthand_and_named_times() {
        assert!(has(
            "results for Q3 were flat",
            EntityCategory::Period,
            "Q3"
        ));
        assert!(has(
            "guidance for Q4 2005 rose",
            EntityCategory::Period,
            "Q4 2005"
        ));
        assert!(has("the call starts at noon", EntityCategory::Tim, "noon"));
        assert!(has(
            "servers restart at midnight",
            EntityCategory::Tim,
            "midnight"
        ));
    }

    #[test]
    fn percentage_points_and_currency_ranges() {
        assert!(has(
            "margins rose 3 percentage points",
            EntityCategory::Prcnt,
            "3 percentage points"
        ));
        assert!(has(
            "a deal worth $5-7 million",
            EntityCategory::Currency,
            "$5-7 million"
        ));
    }

    #[test]
    fn is_year_bounds() {
        assert!(is_year("1996"));
        assert!(is_year("2004"));
        assert!(!is_year("1896"));
        assert!(!is_year("210"));
        assert!(!is_year("21000"));
        assert!(!is_year("20a4"));
    }
}
