//! The annotated-snippet representation consumed by feature extraction.
//!
//! After NER and POS tagging, every token of a snippet carries:
//! * its surface text,
//! * its POS tag, and
//! * optionally the entity span (index + category) covering it.
//!
//! Feature abstraction (paper §3.2.2) then decides, per category, whether
//! to emit the *instance* (the word/entity surface form) or the
//! *presence* (the bare category tag) into the feature vector.

use crate::entity::{EntityCategory, EntitySpan};
use crate::pos::PosTag;
use etap_text::Token;

/// One token of an annotated snippet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedToken {
    /// Surface form (owned; the snippet outlives its source buffer).
    pub text: String,
    /// POS tag (always present, even inside entities).
    pub pos: PosTag,
    /// Index into [`AnnotatedSnippet::entities`] when this token is part
    /// of an entity.
    pub entity: Option<usize>,
}

/// A fully annotated snippet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnnotatedSnippet {
    /// Tokens in document order.
    pub tokens: Vec<AnnotatedToken>,
    /// Entity spans in document order (token indices refer to `tokens`).
    pub entities: Vec<EntitySpan>,
}

impl AnnotatedSnippet {
    /// Assemble from tokenizer + NER + POS outputs.
    ///
    /// `entities` must be disjoint and ordered (as produced by
    /// [`crate::NamedEntityRecognizer::recognize`]).
    #[must_use]
    pub fn assemble(
        _source: &str,
        tokens: &[Token<'_>],
        entities: Vec<EntitySpan>,
        pos_tags: &[PosTag],
    ) -> Self {
        debug_assert_eq!(tokens.len(), pos_tags.len());
        let mut entity_of = vec![None; tokens.len()];
        for (ei, span) in entities.iter().enumerate() {
            for ti in span.token_range() {
                entity_of[ti] = Some(ei);
            }
        }
        let toks = tokens
            .iter()
            .zip(pos_tags)
            .zip(entity_of)
            .map(|((t, &pos), entity)| AnnotatedToken {
                text: t.text.to_string(),
                pos,
                entity,
            })
            .collect();
        Self {
            tokens: toks,
            entities,
        }
    }

    /// The category of the entity covering token `i`, if any.
    #[must_use]
    pub fn entity_category(&self, i: usize) -> Option<EntityCategory> {
        self.tokens
            .get(i)
            .and_then(|t| t.entity)
            .map(|ei| self.entities[ei].category)
    }

    /// Entity surface text (tokens joined by a space).
    #[must_use]
    pub fn entity_text(&self, ei: usize) -> String {
        let span = &self.entities[ei];
        let words: Vec<&str> = span
            .token_range()
            .map(|ti| self.tokens[ti].text.as_str())
            .collect();
        words.join(" ")
    }

    /// Does the snippet contain at least one entity of `cat`?
    #[must_use]
    pub fn contains_category(&self, cat: EntityCategory) -> bool {
        self.entities.iter().any(|e| e.category == cat)
    }

    /// Count entities of `cat`.
    #[must_use]
    pub fn count_category(&self, cat: EntityCategory) -> usize {
        self.entities.iter().filter(|e| e.category == cat).count()
    }

    /// Render the snippet with entity tags substituted in, e.g.
    /// `"ORG acquired ORG for CURRENCY"`. This is the fully-abstracted
    /// view; feature extraction uses a finer per-category policy.
    #[must_use]
    pub fn abstracted_text(&self) -> String {
        let mut out = String::new();
        let mut i = 0;
        while i < self.tokens.len() {
            if !out.is_empty() {
                out.push(' ');
            }
            if let Some(ei) = self.tokens[i].entity {
                out.push_str(self.entities[ei].category.tag());
                i = self.entities[ei].first_token + self.entities[ei].token_len;
            } else {
                out.push_str(&self.tokens[i].text);
                i += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NamedEntityRecognizer, PosTagger};
    use etap_text::tokenize;

    fn annotate(text: &str) -> AnnotatedSnippet {
        let toks = tokenize(text);
        let ents = NamedEntityRecognizer::new().recognize(&toks);
        let tags = PosTagger::new().tag(&toks);
        AnnotatedSnippet::assemble(text, &toks, ents, &tags)
    }

    #[test]
    fn token_entity_links() {
        let s = annotate("IBM acquired Daksh for $160 million.");
        let ibm = &s.tokens[0];
        assert_eq!(ibm.text, "IBM");
        assert!(ibm.entity.is_some());
        assert_eq!(s.entity_category(0), Some(EntityCategory::Org));
        // "acquired" is uncovered.
        assert_eq!(s.tokens[1].entity, None);
    }

    #[test]
    fn abstracted_text_substitutes_tags() {
        let s = annotate("IBM acquired Daksh for $160 million in 2004.");
        let a = s.abstracted_text();
        assert!(a.starts_with("ORG acquired ORG for CURRENCY"), "{a}");
        assert!(a.contains("YEAR"), "{a}");
    }

    #[test]
    fn entity_text_joins_tokens() {
        let s = annotate("Bank of America gained.");
        let ei = s.tokens[0].entity.expect("entity");
        assert_eq!(s.entity_text(ei), "Bank of America");
    }

    #[test]
    fn contains_and_count() {
        let s = annotate("IBM and Oracle both rose 5 % on Monday.");
        assert!(s.contains_category(EntityCategory::Org));
        assert_eq!(s.count_category(EntityCategory::Org), 2);
        assert_eq!(s.count_category(EntityCategory::Prcnt), 1);
        assert!(!s.contains_category(EntityCategory::Currency));
    }

    #[test]
    fn empty_snippet() {
        let s = annotate("");
        assert!(s.tokens.is_empty());
        assert!(s.entities.is_empty());
        assert_eq!(s.abstracted_text(), "");
    }
}
