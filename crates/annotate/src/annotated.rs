//! The annotated-snippet representation consumed by feature extraction.
//!
//! After NER and POS tagging, every token of a snippet carries:
//! * its surface text,
//! * its POS tag, and
//! * optionally the entity span (index + category) covering it.
//!
//! Feature abstraction (paper §3.2.2) then decides, per category, whether
//! to emit the *instance* (the word/entity surface form) or the
//! *presence* (the bare category tag) into the feature vector.
//!
//! ## Representation: structure-of-arrays over a shared buffer
//!
//! A snippet no longer owns one `String` per token. All annotation data
//! lives in a [`SnippetBuf`] — one text buffer plus parallel span / POS /
//! entity-link / entity vectors — and an [`AnnotatedSnippet`] is an
//! `Arc<SnippetBuf>` handle plus the ranges of one snippet inside it.
//! Several snippets of a batch share one buffer; the per-worker
//! [`crate::AnnotateScratch`] recycles buffers through an
//! [`etap_runtime::Arena`], so steady-state annotation allocates nothing.
//!
//! All offsets stored in the buffer are **snippet-relative** (token spans
//! index the snippet's own text slice, entity links index the snippet's
//! own entity list), which makes equality and downstream consumption
//! independent of where in a shared buffer a snippet happens to live —
//! chunk boundaries are invisible, which the determinism suite relies on.

use crate::entity::{EntityCategory, EntitySpan};
use crate::pos::PosTag;
use etap_runtime::Recycle;
use etap_text::{Token, TokenSpan};
use std::fmt;
use std::sync::Arc;

/// Sentinel for "token not covered by any entity" in the link vector.
const NO_ENTITY: u32 = u32::MAX;

/// Backing storage for one or more annotated snippets: one owned text
/// buffer plus parallel structure-of-arrays annotation vectors.
#[derive(Debug, Default)]
pub struct SnippetBuf {
    /// Concatenated snippet texts.
    text: String,
    /// Token spans, with offsets relative to each snippet's text slice.
    spans: Vec<TokenSpan>,
    /// POS tag per token (parallel to `spans`).
    pos: Vec<PosTag>,
    /// Snippet-relative entity index per token, `NO_ENTITY` if uncovered
    /// (parallel to `spans`).
    entity: Vec<u32>,
    /// Entity spans, with snippet-relative token indices and offsets.
    entities: Vec<EntitySpan>,
}

/// The ranges of one snippet inside a [`SnippetBuf`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct SnipRange {
    text: (u32, u32),
    toks: (u32, u32),
    ents: (u32, u32),
}

impl SnippetBuf {
    /// Append one annotated snippet. `spans`/`pos` are parallel token
    /// vectors over `text`; `entities` carries token indices into
    /// `spans`. Everything is copied verbatim — offsets stay
    /// snippet-relative — so appending is a handful of `memcpy`s.
    pub(crate) fn push_snippet(
        &mut self,
        text: &str,
        spans: &[TokenSpan],
        pos: &[PosTag],
        entities: &[EntitySpan],
    ) -> SnipRange {
        debug_assert_eq!(spans.len(), pos.len());
        let text_at = self.text.len() as u32;
        let toks_at = self.spans.len() as u32;
        let ents_at = self.entities.len() as u32;
        self.text.push_str(text);
        self.spans.extend_from_slice(spans);
        self.pos.extend_from_slice(pos);
        let base = self.entity.len();
        self.entity.resize(base + spans.len(), NO_ENTITY);
        for (ei, span) in entities.iter().enumerate() {
            for ti in span.token_range() {
                self.entity[base + ti] = ei as u32;
            }
        }
        self.entities.extend_from_slice(entities);
        SnipRange {
            text: (text_at, self.text.len() as u32),
            toks: (toks_at, self.spans.len() as u32),
            ents: (ents_at, self.entities.len() as u32),
        }
    }
}

impl Recycle for SnippetBuf {
    fn recycle(&mut self) {
        self.text.clear();
        self.spans.clear();
        self.pos.clear();
        self.entity.clear();
        self.entities.clear();
    }
}

/// One token of an annotated snippet, as viewed through
/// [`AnnotatedSnippet::tokens`]. Borrows from the snippet buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenRef<'a> {
    /// Surface form (borrowed from the shared snippet buffer).
    pub text: &'a str,
    /// POS tag (always present, even inside entities).
    pub pos: PosTag,
    /// Index into [`AnnotatedSnippet::entities`] when this token is part
    /// of an entity.
    pub entity: Option<usize>,
}

/// A fully annotated snippet: a shared buffer handle plus the ranges of
/// this snippet's text, tokens and entities inside it.
///
/// Cloning is a refcount bump. Equality compares annotation *content*
/// (text, token spans, POS tags, entity links, entity spans), never
/// buffer identity, so snippets annotated through different batch
/// chunkings compare equal.
#[derive(Clone)]
pub struct AnnotatedSnippet {
    buf: Arc<SnippetBuf>,
    range: SnipRange,
}

impl Default for AnnotatedSnippet {
    fn default() -> Self {
        Self {
            buf: Arc::new(SnippetBuf::default()),
            range: SnipRange {
                text: (0, 0),
                toks: (0, 0),
                ents: (0, 0),
            },
        }
    }
}

impl AnnotatedSnippet {
    /// Wrap one snippet range of a shared buffer.
    pub(crate) fn from_shared(buf: Arc<SnippetBuf>, range: SnipRange) -> Self {
        Self { buf, range }
    }

    /// Assemble from tokenizer + NER + POS outputs (compatibility path:
    /// builds a fresh single-snippet buffer).
    ///
    /// `entities` must be disjoint and ordered (as produced by
    /// [`crate::NamedEntityRecognizer::recognize`]).
    #[must_use]
    pub fn assemble(
        source: &str,
        tokens: &[Token<'_>],
        entities: Vec<EntitySpan>,
        pos_tags: &[PosTag],
    ) -> Self {
        debug_assert_eq!(tokens.len(), pos_tags.len());
        let mut buf = SnippetBuf::default();
        let spans: Vec<TokenSpan> = tokens
            .iter()
            .map(|t| TokenSpan {
                start: t.start as u32,
                end: t.end as u32,
                kind: t.kind,
            })
            .collect();
        let range = buf.push_snippet(source, &spans, pos_tags, &entities);
        Self {
            buf: Arc::new(buf),
            range,
        }
    }

    /// The snippet's source text.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.buf.text[self.range.text.0 as usize..self.range.text.1 as usize]
    }

    /// Token spans over [`Self::text`].
    #[must_use]
    pub fn spans(&self) -> &[TokenSpan] {
        &self.buf.spans[self.range.toks.0 as usize..self.range.toks.1 as usize]
    }

    /// POS tags, parallel to [`Self::spans`].
    #[must_use]
    pub fn pos_tags(&self) -> &[PosTag] {
        &self.buf.pos[self.range.toks.0 as usize..self.range.toks.1 as usize]
    }

    fn entity_ids(&self) -> &[u32] {
        &self.buf.entity[self.range.toks.0 as usize..self.range.toks.1 as usize]
    }

    /// Entity spans in document order (token indices refer to this
    /// snippet's tokens).
    #[must_use]
    pub fn entities(&self) -> &[EntitySpan] {
        &self.buf.entities[self.range.ents.0 as usize..self.range.ents.1 as usize]
    }

    /// Number of tokens.
    #[must_use]
    pub fn token_count(&self) -> usize {
        (self.range.toks.1 - self.range.toks.0) as usize
    }

    /// Whether the snippet has no tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.range.toks.0 == self.range.toks.1
    }

    /// Surface text of token `i`.
    #[must_use]
    pub fn token_text(&self, i: usize) -> &str {
        self.spans()[i].text(self.text())
    }

    /// POS tag of token `i`.
    #[must_use]
    pub fn pos(&self, i: usize) -> PosTag {
        self.pos_tags()[i]
    }

    /// Index into [`Self::entities`] of the entity covering token `i`.
    #[must_use]
    pub fn entity_of(&self, i: usize) -> Option<usize> {
        match self.entity_ids()[i] {
            NO_ENTITY => None,
            ei => Some(ei as usize),
        }
    }

    /// Iterate the tokens as text/POS/entity-link views.
    pub fn tokens(&self) -> impl Iterator<Item = TokenRef<'_>> + '_ {
        let text = self.text();
        self.spans()
            .iter()
            .zip(self.pos_tags())
            .zip(self.entity_ids())
            .map(move |((span, &pos), &eid)| TokenRef {
                text: span.text(text),
                pos,
                entity: if eid == NO_ENTITY {
                    None
                } else {
                    Some(eid as usize)
                },
            })
    }

    /// The category of the entity covering token `i`, if any.
    #[must_use]
    pub fn entity_category(&self, i: usize) -> Option<EntityCategory> {
        self.entity_of(i).map(|ei| self.entities()[ei].category)
    }

    /// Entity surface text (tokens joined by a space).
    #[must_use]
    pub fn entity_text(&self, ei: usize) -> String {
        let span = &self.entities()[ei];
        let mut out = String::new();
        for ti in span.token_range() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.token_text(ti));
        }
        out
    }

    /// Does the snippet contain at least one entity of `cat`?
    #[must_use]
    pub fn contains_category(&self, cat: EntityCategory) -> bool {
        self.entities().iter().any(|e| e.category == cat)
    }

    /// Count entities of `cat`.
    #[must_use]
    pub fn count_category(&self, cat: EntityCategory) -> usize {
        self.entities().iter().filter(|e| e.category == cat).count()
    }

    /// Render the snippet with entity tags substituted in, e.g.
    /// `"ORG acquired ORG for CURRENCY"`. This is the fully-abstracted
    /// view; feature extraction uses a finer per-category policy.
    #[must_use]
    pub fn abstracted_text(&self) -> String {
        let mut out = String::new();
        let mut i = 0;
        let n = self.token_count();
        while i < n {
            if !out.is_empty() {
                out.push(' ');
            }
            if let Some(ei) = self.entity_of(i) {
                let span = &self.entities()[ei];
                out.push_str(span.category.tag());
                i = span.first_token + span.token_len;
            } else {
                out.push_str(self.token_text(i));
                i += 1;
            }
        }
        out
    }
}

impl PartialEq for AnnotatedSnippet {
    fn eq(&self, other: &Self) -> bool {
        self.text() == other.text()
            && self.spans() == other.spans()
            && self.pos_tags() == other.pos_tags()
            && self.entity_ids() == other.entity_ids()
            && self.entities() == other.entities()
    }
}

impl Eq for AnnotatedSnippet {}

impl fmt::Debug for AnnotatedSnippet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnnotatedSnippet")
            .field("text", &self.text())
            .field("pos", &self.pos_tags())
            .field("entities", &self.entities())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NamedEntityRecognizer, PosTagger};
    use etap_text::tokenize;

    fn annotate(text: &str) -> AnnotatedSnippet {
        let toks = tokenize(text);
        let ents = NamedEntityRecognizer::new().recognize(&toks);
        let tags = PosTagger::new().tag(&toks);
        AnnotatedSnippet::assemble(text, &toks, ents, &tags)
    }

    #[test]
    fn token_entity_links() {
        let s = annotate("IBM acquired Daksh for $160 million.");
        assert_eq!(s.token_text(0), "IBM");
        assert!(s.entity_of(0).is_some());
        assert_eq!(s.entity_category(0), Some(EntityCategory::Org));
        // "acquired" is uncovered.
        assert_eq!(s.entity_of(1), None);
    }

    #[test]
    fn abstracted_text_substitutes_tags() {
        let s = annotate("IBM acquired Daksh for $160 million in 2004.");
        let a = s.abstracted_text();
        assert!(a.starts_with("ORG acquired ORG for CURRENCY"), "{a}");
        assert!(a.contains("YEAR"), "{a}");
    }

    #[test]
    fn entity_text_joins_tokens() {
        let s = annotate("Bank of America gained.");
        let ei = s.entity_of(0).expect("entity");
        assert_eq!(s.entity_text(ei), "Bank of America");
    }

    #[test]
    fn contains_and_count() {
        let s = annotate("IBM and Oracle both rose 5 % on Monday.");
        assert!(s.contains_category(EntityCategory::Org));
        assert_eq!(s.count_category(EntityCategory::Org), 2);
        assert_eq!(s.count_category(EntityCategory::Prcnt), 1);
        assert!(!s.contains_category(EntityCategory::Currency));
    }

    #[test]
    fn empty_snippet() {
        let s = annotate("");
        assert_eq!(s.token_count(), 0);
        assert!(s.is_empty());
        assert!(s.entities().is_empty());
        assert_eq!(s.abstracted_text(), "");
    }

    #[test]
    fn token_ref_iteration() {
        let s = annotate("IBM acquired Daksh.");
        let toks: Vec<TokenRef<'_>> = s.tokens().collect();
        assert_eq!(toks.len(), s.token_count());
        assert_eq!(toks[1].text, "acquired");
        assert_eq!(toks[1].entity, None);
        assert_eq!(toks[0].entity, Some(0));
    }

    #[test]
    fn equality_ignores_buffer_placement() {
        let text1 = "IBM acquired Daksh for $160 million.";
        let text2 = "Oracle gained 5 % on Monday.";
        let standalone = annotate(text2);

        // Build a shared buffer holding both snippets; the second must
        // compare equal to its standalone twin despite living at a
        // nonzero offset in a different buffer.
        let ner = NamedEntityRecognizer::new();
        let pos = PosTagger::new();
        let mut buf = SnippetBuf::default();
        let mut ranges = Vec::new();
        for text in [text1, text2] {
            let toks = tokenize(text);
            let spans: Vec<TokenSpan> = toks
                .iter()
                .map(|t| TokenSpan {
                    start: t.start as u32,
                    end: t.end as u32,
                    kind: t.kind,
                })
                .collect();
            let ents = ner.recognize(&toks);
            let tags = pos.tag(&toks);
            ranges.push(buf.push_snippet(text, &spans, &tags, &ents));
        }
        let shared = Arc::new(buf);
        let packed = AnnotatedSnippet::from_shared(Arc::clone(&shared), ranges[1]);
        assert_eq!(packed, standalone);
        assert_eq!(packed.text(), text2);
        assert_ne!(
            packed,
            AnnotatedSnippet::from_shared(shared, ranges[0]),
            "different snippets must not compare equal"
        );
    }
}
