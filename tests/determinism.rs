//! Whole-pipeline determinism: every stage of the reproduction must be
//! bit-for-bit repeatable given the same seeds — the property every
//! experiment binary relies on.

use etap_repro::corpus::{LinkGraph, SearchEngine};
use etap_repro::system::{persist, rank};
use etap_repro::{DriverSpec, Etap, EtapConfig, SalesDriver, SyntheticWeb, WebConfig};

fn config() -> EtapConfig {
    let mut c = EtapConfig::paper();
    c.training.top_docs_per_query = 50;
    c.training.negative_snippets = 700;
    c.training.pure_positives = 10;
    c.drivers = vec![DriverSpec::builtin(SalesDriver::MergersAcquisitions)];
    c
}

#[test]
fn web_generation_is_bit_for_bit_stable() {
    let cfg = WebConfig {
        total_docs: 250,
        ..WebConfig::default()
    };
    let a = SyntheticWeb::generate(cfg);
    let b = SyntheticWeb::generate(cfg);
    for (da, db) in a.docs().iter().zip(b.docs()) {
        assert_eq!(da.text(), db.text());
        assert_eq!(da.companies, db.companies);
        assert_eq!(da.date, db.date);
        assert_eq!(da.trigger_sentences, db.trigger_sentences);
    }
}

#[test]
fn search_results_are_stable() {
    let web = SyntheticWeb::generate(WebConfig::with_docs(300));
    let a = SearchEngine::build(web.docs());
    let b = SearchEngine::build(web.docs());
    for q in ["\"new ceo\"", "\"agreed to buy\"", "revenue"] {
        assert_eq!(a.search(q, 50), b.search(q, 50), "{q}");
    }
}

#[test]
fn trained_models_serialize_identically_across_runs() {
    let web = SyntheticWeb::generate(WebConfig::with_docs(600));
    let t1 = Etap::new(config()).train(&web);
    let t2 = Etap::new(config()).train(&web);
    let s1 = persist::to_string(&t1.drivers[0]);
    let s2 = persist::to_string(&t2.drivers[0]);
    assert_eq!(s1, s2, "training must be deterministic end to end");
}

#[test]
fn event_rankings_are_stable() {
    let web = SyntheticWeb::generate(WebConfig::with_docs(600));
    let trained = Etap::new(config()).train(&web);
    let fresh = SyntheticWeb::generate(WebConfig {
        seed: 99,
        ..WebConfig::with_docs(120)
    });
    let e1 = trained.identify_events(fresh.docs());
    let e2 = trained.identify_events(fresh.docs());
    assert_eq!(e1, e2);
    assert_eq!(
        rank::rank_by_score(e1.clone()),
        rank::rank_by_score(e2.clone())
    );
    assert_eq!(rank::rank_companies(&e1), rank::rank_companies(&e2));
}

#[test]
fn link_graph_is_stable() {
    let web = SyntheticWeb::generate(WebConfig::with_docs(300));
    let a = LinkGraph::build(&web, 42, 2);
    let b = LinkGraph::build(&web, 42, 2);
    for id in 0..web.len() {
        assert_eq!(a.links(id), b.links(id));
    }
}

/// The tentpole contract: the multi-threaded training path must produce
/// **byte-identical** artifacts to the sequential path — same harvested
/// snippets, same vocabulary ids, same de-noised model parameters.
#[test]
fn parallel_training_is_bit_identical_to_sequential() {
    let web = SyntheticWeb::generate(WebConfig::with_docs(600));
    let mut seq = config();
    seq.training.threads = 1;
    let mut par = config();
    par.training.threads = 4;
    let t1 = Etap::new(seq).train(&web);
    let t4 = Etap::new(par).train(&web);
    let s1 = persist::to_string(&t1.drivers[0]);
    let s4 = persist::to_string(&t4.drivers[0]);
    assert_eq!(
        s1, s4,
        "ETAP_THREADS=4 training must serialize byte-identically to ETAP_THREADS=1"
    );
}

/// Scoring, event identification and the MRR(c) company ranking must
/// all be invariant under the thread count.
#[test]
fn parallel_scoring_and_rankings_match_sequential() {
    use etap_repro::system::EventIdentifier;

    let web = SyntheticWeb::generate(WebConfig::with_docs(600));
    let trained = Etap::new(config()).train(&web);
    let fresh = SyntheticWeb::generate(WebConfig {
        seed: 99,
        ..WebConfig::with_docs(120)
    });

    let sequential = EventIdentifier::new(3)
        .with_threads(1)
        .identify(&trained.drivers, fresh.docs());
    for threads in [2usize, 4] {
        let parallel = EventIdentifier::new(3)
            .with_threads(threads)
            .identify(&trained.drivers, fresh.docs());
        assert_eq!(sequential, parallel, "threads = {threads}");
        assert_eq!(
            rank::rank_by_score(sequential.clone()),
            rank::rank_by_score(parallel.clone()),
            "threads = {threads}"
        );
        assert_eq!(
            rank::rank_companies(&sequential),
            rank::rank_companies(&parallel),
            "threads = {threads}"
        );
    }
}

/// The in-tree PRNG must never change its stream for a given seed —
/// every persisted experiment seed depends on it. Golden values for the
/// default web seed (0xE7A9); see etap-runtime for the full vector set.
#[test]
fn prng_streams_are_stable_for_default_seeds() {
    use etap_repro::runtime::Rng;

    let mut rng = Rng::seed_from_u64(0xE7A9);
    let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    let mut again = Rng::seed_from_u64(0xE7A9);
    let repeat: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
    assert_eq!(first, repeat);

    // Distinct chunk streams from one master seed stay distinct and
    // reproducible (the basis of order-independent parallel sampling).
    let a: Vec<u64> = {
        let mut s = Rng::stream(0x7EA9, 0);
        (0..4).map(|_| s.next_u64()).collect()
    };
    let b: Vec<u64> = {
        let mut s = Rng::stream(0x7EA9, 1);
        (0..4).map(|_| s.next_u64()).collect()
    };
    assert_ne!(a, b);
    let a2: Vec<u64> = {
        let mut s = Rng::stream(0x7EA9, 0);
        (0..4).map(|_| s.next_u64()).collect()
    };
    assert_eq!(a, a2);
}
