//! Cross-crate integration tests: the full ETAP pipeline assembled from
//! every workspace crate, exercised end to end on a small synthetic web.

use etap_repro::annotate::Annotator;
use etap_repro::classify::Classifier;
use etap_repro::corpus::SearchEngine;
use etap_repro::system::training::{self, TrainingConfig};
use etap_repro::system::{rank, EventIdentifier};
use etap_repro::{DriverSpec, Etap, EtapConfig, SalesDriver, SyntheticWeb, WebConfig};

fn small_web(seed: u64) -> SyntheticWeb {
    SyntheticWeb::generate(WebConfig {
        total_docs: 700,
        seed,
        ..WebConfig::default()
    })
}

fn quick_config() -> TrainingConfig {
    TrainingConfig {
        top_docs_per_query: 60,
        negative_snippets: 800,
        pure_positives: 10,
        ..TrainingConfig::default()
    }
}

#[test]
fn train_identify_rank_roundtrip() {
    let web = small_web(0xE7A9);
    let mut config = EtapConfig::paper();
    config.training = quick_config();
    config.drivers = vec![
        DriverSpec::builtin(SalesDriver::MergersAcquisitions),
        DriverSpec::builtin(SalesDriver::RevenueGrowth),
    ];
    let trained = Etap::new(config).train(&web);

    let fresh = small_web(0x12345);
    let events = trained.identify_events(fresh.docs());
    assert!(!events.is_empty());

    // Ranking is a permutation of the events.
    let ranked = rank::rank_by_score(events.clone());
    assert_eq!(ranked.len(), events.len());
    for w in ranked.windows(2) {
        assert!(w[0].score >= w[1].score);
    }

    // Company aggregation produces finite scores in (0, 1].
    let companies = rank::rank_companies(&events);
    for c in &companies {
        assert!(c.mrr > 0.0 && c.mrr <= 1.0, "{c:?}");
        assert!(c.events >= 1);
    }
    // Sorted descending by MRR.
    for w in companies.windows(2) {
        assert!(w[0].mrr >= w[1].mrr);
    }
}

#[test]
fn trained_driver_is_deterministic() {
    let web = small_web(7);
    let engine = SearchEngine::build(web.docs());
    let annotator = Annotator::new();
    let config = quick_config();
    let spec = DriverSpec::builtin(SalesDriver::ChangeInManagement);
    let a = training::train_driver(&spec, &engine, &web, &annotator, &config, |_| false);
    let b = training::train_driver(&spec, &engine, &web, &annotator, &config, |_| false);
    let probe = annotator.annotate("Acme Corp named Jane Roe as its new CEO on Monday.");
    assert_eq!(a.score(&probe), b.score(&probe));
    assert_eq!(a.report.noisy_positives, b.report.noisy_positives);
}

#[test]
fn exclusion_keeps_test_docs_out_of_training() {
    let web = small_web(11);
    let engine = SearchEngine::build(web.docs());
    let annotator = Annotator::new();
    let config = quick_config();
    let spec = DriverSpec::builtin(SalesDriver::RevenueGrowth);
    // Excluding everything leaves no pure positives and no negatives —
    // the pipeline should still not panic (empty sets are legal).
    let trained = training::train_driver(&spec, &engine, &web, &annotator, &config, |_| true);
    assert_eq!(
        trained.report.retained_positives,
        trained.report.noisy_positives
    );
}

#[test]
fn event_scores_are_probabilities_and_companies_extracted() {
    let web = small_web(21);
    let engine = SearchEngine::build(web.docs());
    let annotator = Annotator::new();
    let config = quick_config();
    let spec = DriverSpec::builtin(SalesDriver::MergersAcquisitions);
    let trained = training::train_driver(&spec, &engine, &web, &annotator, &config, |_| false);

    let fresh = small_web(22);
    let identifier = EventIdentifier::new(3);
    let events = identifier.identify(&[trained], fresh.docs());
    assert!(!events.is_empty());
    let mut with_companies = 0;
    for e in &events {
        assert!((0.5..=1.0).contains(&e.score));
        assert_eq!(e.driver, SalesDriver::MergersAcquisitions);
        assert!(e.url.starts_with("http://"));
        if !e.companies.is_empty() {
            with_companies += 1;
        }
    }
    // The vast majority of M&A events should name at least one company.
    assert!(with_companies * 10 >= events.len() * 8);
}

#[test]
fn score_snippet_agrees_with_model_posterior() {
    let web = small_web(31);
    let mut config = EtapConfig::paper();
    config.training = quick_config();
    config.drivers = vec![DriverSpec::builtin(SalesDriver::RevenueGrowth)];
    let trained = Etap::new(config).train(&web);

    let text = "Oracle posted record revenue of $900 million for fiscal 2005.";
    let via_system = trained
        .score_snippet(SalesDriver::RevenueGrowth, text)
        .unwrap();
    let driver = trained.driver(SalesDriver::RevenueGrowth).unwrap();
    let annotator = Annotator::new();
    let ann = annotator.annotate(text);
    let mut vz = driver.vectorizer.clone();
    let via_model = driver.model.posterior(&vz.vectorize(&ann));
    assert!((via_system - via_model).abs() < 1e-12);
}

#[test]
fn unknown_driver_scores_none() {
    let web = small_web(41);
    let mut config = EtapConfig::paper();
    config.training = quick_config();
    config.drivers = vec![DriverSpec::builtin(SalesDriver::RevenueGrowth)];
    let trained = Etap::new(config).train(&web);
    assert!(trained
        .score_snippet(SalesDriver::MergersAcquisitions, "IBM acquired Daksh.")
        .is_none());
}
