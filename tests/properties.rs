//! Property-based tests over the core data structures and invariants,
//! spanning crates (tokenizer ↔ chunker ↔ snippets ↔ annotator ↔
//! vectorizer ↔ classifiers).
//!
//! Compiled only under the off-by-default `proptest` cargo feature: the
//! external `proptest` crate cannot be fetched in the offline build
//! environment. Restore the dev-dependency and run
//! `cargo test --features proptest` to execute these.
#![cfg(feature = "proptest")]

use etap_repro::annotate::Annotator;
use etap_repro::classify::{Classifier, Dataset, Label, MultinomialNb, Trainer};
use etap_repro::features::{SparseVec, Vectorizer};
use etap_repro::system::aliases::AliasResolver;
use etap_repro::system::temporal::{Date, TemporalResolver};
use etap_repro::text::{tokenize, SentenceChunker, SnippetGenerator};
use proptest::prelude::*;

/// Text made of words, digits, punctuation and whitespace — adversarial
/// but printable.
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            "[a-zA-Z]{1,12}".prop_map(|s| s),
            "[0-9]{1,6}".prop_map(|s| s),
            Just(".".to_string()),
            Just("!".to_string()),
            Just("?".to_string()),
            Just(",".to_string()),
            Just("$".to_string()),
            Just("%".to_string()),
            Just("Mr.".to_string()),
            Just("Inc.".to_string()),
            Just("5.3".to_string()),
            Just("IBM".to_string()),
            Just("New York".to_string()),
        ],
        0..60,
    )
    .prop_map(|words| words.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tokens_map_back_to_source(text in arb_text()) {
        for tok in tokenize(&text) {
            prop_assert_eq!(&text[tok.start..tok.end], tok.text);
        }
    }

    #[test]
    fn tokens_are_ordered_and_disjoint(text in arb_text()) {
        let toks = tokenize(&text);
        for w in toks.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn tokens_cover_all_non_whitespace(text in arb_text()) {
        let toks = tokenize(&text);
        let covered: usize = toks.iter().map(|t| t.text.len()).sum();
        let expected: usize = text
            .chars()
            .filter(|c| !c.is_whitespace() && !c.is_control())
            .map(char::len_utf8)
            .sum();
        prop_assert_eq!(covered, expected);
    }

    #[test]
    fn sentences_are_ordered_disjoint_and_nonempty(text in arb_text()) {
        let chunker = SentenceChunker::new();
        let spans = chunker.sentences(&text);
        for w in spans.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for s in &spans {
            prop_assert!(s.start < s.end);
            prop_assert!(!s.text(&text).trim().is_empty());
        }
    }

    #[test]
    fn disjoint_snippets_partition_sentences(text in arb_text(), n in 1usize..6) {
        let gen = SnippetGenerator::new(n);
        let chunker = SentenceChunker::new();
        let n_sentences = chunker.sentences(&text).len();
        let snippets = gen.snippets(&text);
        let total: usize = snippets.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, n_sentences);
        for s in &snippets {
            prop_assert!(s.len >= 1 && s.len <= n);
        }
    }

    #[test]
    fn annotator_entities_are_ordered_disjoint(text in arb_text()) {
        let ann = Annotator::new().annotate(&text);
        for w in ann.entities().windows(2) {
            prop_assert!(
                w[0].first_token + w[0].token_len <= w[1].first_token,
                "{:?}", ann.entities()
            );
        }
        // Every entity token index is in range and links back.
        for (ei, e) in ann.entities().iter().enumerate() {
            for ti in e.token_range() {
                prop_assert_eq!(ann.entity_of(ti), Some(ei));
            }
        }
    }

    #[test]
    fn vectorizer_is_pure_given_frozen_vocab(text in arb_text()) {
        let annotated = Annotator::new().annotate(&text);
        let mut vz = Vectorizer::paper_default();
        let _ = vz.vectorize(&annotated);
        vz.freeze();
        let a = vz.vectorize(&annotated);
        let b = vz.vectorize(&annotated);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sparse_vec_dedup_invariants(pairs in proptest::collection::vec((0u32..500, 0.5f32..4.0), 0..40)) {
        let v = SparseVec::from_pairs(pairs.clone());
        // Sorted, unique ids.
        let ids: Vec<u32> = v.iter().map(|&(id, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&ids, &sorted);
        // Total preserved.
        let total_in: f64 = pairs.iter().map(|&(_, c)| f64::from(c)).sum();
        prop_assert!((v.total() - total_in).abs() < 1e-3);
    }

    #[test]
    fn nb_posterior_is_probability(
        pos_ids in proptest::collection::vec(0u32..50, 1..10),
        neg_ids in proptest::collection::vec(50u32..100, 1..10),
        probe in proptest::collection::vec(0u32..120, 0..15),
    ) {
        let mut data = Dataset::new();
        for _ in 0..5 {
            data.push(pos_ids.iter().map(|&i| (i, 1.0)).collect(), Label::Positive);
            data.push(neg_ids.iter().map(|&i| (i, 1.0)).collect(), Label::Negative);
        }
        let model = MultinomialNb::new().fit(&data);
        let v: SparseVec = probe.iter().map(|&i| (i, 1.0)).collect();
        let p = model.posterior(&v);
        prop_assert!((0.0..=1.0).contains(&p), "{}", p);
        prop_assert!(p.is_finite());
    }

    #[test]
    fn nb_training_features_classified_correctly(
        seed_pos in 0u32..40,
        seed_neg in 40u32..80,
    ) {
        let mut data = Dataset::new();
        for _ in 0..10 {
            data.push([(seed_pos, 1.0f32)].into_iter().collect(), Label::Positive);
            data.push([(seed_neg, 1.0f32)].into_iter().collect(), Label::Negative);
        }
        let model = MultinomialNb::new().fit(&data);
        let pv: SparseVec = [(seed_pos, 1.0f32)].into_iter().collect();
        let nv: SparseVec = [(seed_neg, 1.0f32)].into_iter().collect();
        prop_assert!(model.posterior(&pv) > 0.5);
        prop_assert!(model.posterior(&nv) < 0.5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alias_canonicalization_is_idempotent(name in "[A-Z][a-z]{2,10}( [A-Z][a-z]{2,10}){0,2}") {
        let mut r = AliasResolver::new();
        let a = r.canonicalize(&name);
        let b = r.canonicalize(&name);
        let c = r.canonicalize(&a);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    #[test]
    fn alias_designators_never_split_a_company(
        base in "[A-Z][a-z]{3,10}",
        suffix in prop_oneof![
            Just("Inc"), Just("Corp"), Just("Ltd"), Just("Group"), Just("Holdings")
        ],
    ) {
        let mut r = AliasResolver::new();
        let plain = r.canonicalize(&base);
        let with_suffix = r.canonicalize(&format!("{base} {suffix}"));
        prop_assert_eq!(plain, with_suffix);
    }

    #[test]
    fn temporal_resolution_never_panics(phrase in "[a-zA-Z0-9 ,]{0,40}") {
        let resolver = TemporalResolver::new();
        let _ = resolver.resolve(&phrase, Date::new(2005, 6, 15));
    }

    #[test]
    fn temporal_years_resolve_to_themselves(y in 1900u16..2099) {
        let resolver = TemporalResolver::new();
        let d = resolver.resolve(&y.to_string(), Date::new(2005, 6, 15));
        prop_assert_eq!(d.map(|d| d.year), Some(y));
    }

    #[test]
    fn recency_score_is_bounded(
        y in 1950u16..2010,
        m in 1u8..=12,
        half_life in 10.0f64..5000.0,
    ) {
        let ann = Annotator::new();
        let snip = ann.annotate(&format!("Revenue peaked back in {y}."));
        let score = TemporalResolver::new().recency_score(
            &snip,
            Date::new(2005, m, 15),
            half_life,
        );
        prop_assert!((0.0..=1.0).contains(&score), "{}", score);
    }

    #[test]
    fn date_ordering_matches_days_since(
        y1 in 1990u16..2010, m1 in 1u8..=12, d1 in 1u8..=28,
        y2 in 1990u16..2010, m2 in 1u8..=12, d2 in 1u8..=28,
    ) {
        let a = Date::new(y1, m1, d1);
        let b = Date::new(y2, m2, d2);
        if a > b {
            prop_assert!(a.days_since(b) > 0.0);
        }
        if a < b {
            prop_assert!(a.days_since(b) < 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The whole text front-end must be total over arbitrary unicode.
    #[test]
    fn text_pipeline_never_panics_on_arbitrary_unicode(text in "\\PC{0,200}") {
        let toks = tokenize(&text);
        for t in &toks {
            prop_assert_eq!(&text[t.start..t.end], t.text);
        }
        let _ = SentenceChunker::new().sentences(&text);
        let _ = SnippetGenerator::new(3).snippets(&text);
        let _ = Annotator::new().annotate(&text);
    }

    #[test]
    fn stemmer_total_and_ascii_lowercase_closed(word in "\\PC{0,30}") {
        let stemmed = etap_repro::text::stem(&word);
        // Porter only shortens or preserves ASCII-lowercase words; any
        // other input passes through unchanged.
        if word.bytes().all(|b| b.is_ascii_lowercase()) && word.len() > 2 {
            prop_assert!(stemmed.len() <= word.len() + 1); // +1 for the -e restore cases
        } else {
            prop_assert_eq!(stemmed, word);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The model parser must reject (not panic on) arbitrary garbage.
    #[test]
    fn persist_parser_is_total(garbage in "\\PC{0,400}") {
        let _ = etap_repro::system::persist::from_str(&garbage);
        let _ = etap_repro::system::persist::from_str(&format!("ETAP-MODEL v1\n{garbage}"));
    }

    /// Deduplication is idempotent: re-checking any text already seen
    /// always reports it as a duplicate.
    #[test]
    fn deduper_is_idempotent(texts in proptest::collection::vec("[a-z]{3,8}( [a-z]{3,8}){4,12}", 1..12)) {
        let mut d = etap_repro::system::EventDeduper::new(0.9);
        let verdicts: Vec<bool> = texts.iter().map(|t| d.is_new(t)).collect();
        // Second pass: everything is now a known duplicate.
        for t in &texts {
            prop_assert!(!d.is_new(t));
        }
        // At least the first text was new.
        prop_assert!(verdicts[0]);
        // Cluster count equals the number of accepted texts.
        prop_assert_eq!(d.clusters(), verdicts.iter().filter(|v| **v).count());
    }

    /// Orientation scoring is total and sign-consistent with its lexicon.
    #[test]
    fn orientation_score_is_total(text in "\\PC{0,200}") {
        let lex = etap_repro::OrientationLexicon::revenue_growth();
        let s = lex.score(&text);
        prop_assert!(s.is_finite());
    }
}

/// Arbitrary NE-filter trees over the full leaf alphabet (categories,
/// ATLEAST counts, keywords, TRUE) with bounded depth.
fn arb_filter() -> impl Strategy<Value = etap_repro::system::Filter> {
    use etap_repro::annotate::EntityCategory;
    use etap_repro::system::Filter;
    let cat = proptest::sample::select(EntityCategory::ALL.to_vec());
    let leaf = prop_oneof![
        cat.clone().prop_map(Filter::cat),
        (cat, 1usize..5).prop_map(|(c, n)| Filter::AtLeast(c, n)),
        "[a-z]{1,10}".prop_map(|w| Filter::kw(&w)),
        Just(Filter::True),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Filter::negate),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The filter grammar's Display is a parseable fixed point:
    /// parse(display(f)) == f, and re-rendering is byte-stable.
    #[test]
    fn filter_display_parse_round_trips(f in arb_filter()) {
        use etap_repro::system::Filter;
        let shown = f.to_string();
        let reparsed: Filter = shown.parse().expect("display output must parse");
        prop_assert_eq!(&reparsed, &f, "{}", shown);
        prop_assert_eq!(reparsed.to_string(), shown);
    }

    /// The filter parser is total: arbitrary garbage returns a typed
    /// error with an in-bounds position, never a panic.
    #[test]
    fn filter_parser_is_total(garbage in "\\PC{0,120}") {
        use etap_repro::system::Filter;
        if let Err(e) = garbage.parse::<Filter>() {
            prop_assert!(e.pos <= garbage.len());
        }
    }
}
