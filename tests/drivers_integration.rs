//! The "drivers as data" contract, end to end: the two shipped example
//! drivers (funding rounds, executive hires) run the **full loop** —
//! corpus generation → training → LEADS v2 publish → mmap warm start →
//! HTTP serving — purely from the committed `drivers/extra.drivers`
//! file, with zero driver-specific Rust.

use etap_repro::serve::{GenerationStore, LeadSnapshot, LeadsFormat, ServeConfig};
use etap_repro::system::driverfile;
use etap_repro::{DriverSet, Etap, EtapConfig, SalesDriver, SyntheticWeb, TrainedEtap, WebConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

fn drivers_file() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("drivers")
        .join("extra.drivers")
}

/// Load the committed driver pack exactly once per test binary (the
/// registry is process-global; `load` is idempotent but the specs only
/// need building once) and train both custom drivers on a synthetic
/// web that includes their trigger genres.
fn trained_custom() -> Arc<TrainedEtap> {
    static TRAINED: OnceLock<Arc<TrainedEtap>> = OnceLock::new();
    Arc::clone(TRAINED.get_or_init(|| {
        let specs = driverfile::load(&drivers_file()).expect("load drivers/extra.drivers");
        assert_eq!(specs.len(), 2, "the shipped pack has two drivers");
        let web = SyntheticWeb::generate(WebConfig {
            total_docs: 900,
            drivers: DriverSet::all_registered(),
            ..WebConfig::default()
        });
        let mut config = EtapConfig::paper();
        config.training.top_docs_per_query = 50;
        config.training.negative_snippets = 900;
        config.training.pure_positives = 10;
        config.drivers = specs;
        Arc::new(Etap::new(config).train(&web))
    }))
}

fn custom_crawl(seed: u64) -> SyntheticWeb {
    SyntheticWeb::generate(WebConfig {
        total_docs: 120,
        seed,
        drivers: DriverSet::all_registered(),
        ..WebConfig::default()
    })
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("write");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read");
    let response = String::from_utf8_lossy(&out).into_owned();
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map_or(String::new(), |(_, b)| b.to_string());
    (status, body)
}

#[test]
fn example_drivers_file_round_trips_and_matches_the_emitter() {
    let text = std::fs::read_to_string(drivers_file()).expect("read committed file");
    // The committed file is exactly what the codec emits today — the
    // checksum trailer and all (it is machine-written by
    // `etap-cli example-drivers`).
    assert_eq!(text, driverfile::to_string(&driverfile::example_defs()));
    let defs = driverfile::parse_defs(&text).expect("parse");
    assert_eq!(defs[0].key, "funding-rounds");
    assert_eq!(defs[1].key, "executive-hires");
}

#[test]
fn custom_drivers_identify_events_from_the_data_file_alone() {
    let trained = trained_custom();
    let funding: SalesDriver = "funding-rounds".parse().expect("registered");
    let hires: SalesDriver = "executive-hires".parse().expect("registered");

    let crawl = custom_crawl(41);
    let events = trained.identify_events(crawl.docs());
    let funding_events = events.iter().filter(|e| e.driver == funding).count();
    let hire_events = events.iter().filter(|e| e.driver == hires).count();
    assert!(funding_events > 0, "no funding-rounds events identified");
    assert!(hire_events > 0, "no executive-hires events identified");

    // The classifiers discriminate: a canonical trigger scores above
    // the 0.5 decision line, background below it.
    let s = trained
        .score_snippet(
            funding,
            "Acme Corp raised $25 million in a funding round led by Beta Ltd.",
        )
        .expect("trained model");
    assert!(s > 0.5, "{s}");
    let b = trained
        .score_snippet(
            funding,
            "Simmer the sauce for twenty minutes, stirring occasionally.",
        )
        .expect("trained model");
    assert!(b < 0.5, "{b}");
}

#[test]
fn custom_driver_leads_survive_v2_publish_restart_and_threads() {
    let trained = trained_custom();
    let crawl = custom_crawl(43);

    let root = std::env::temp_dir().join(format!(
        "etap_drivers_integration_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let store = GenerationStore::open(&root)
        .expect("open store")
        .with_leads_format(LeadsFormat::Binary { shards: 4 });

    // Publish generation 1 as sharded LEADS v2 (custom driver codes
    // travel in the book's code table).
    let snapshot = Arc::new(LeadSnapshot::build_parallel(
        Arc::clone(&trained),
        crawl.docs(),
        1,
        1,
    ));
    store.publish(&snapshot).expect("publish v2");

    // Warm start from disk (mmap path) and serve.
    let (restored, skipped) = store.load_latest().expect("scan").expect("generation");
    assert!(skipped.is_empty(), "{skipped:?}");
    let server = etap_repro::serve::start(&ServeConfig::default(), Arc::new(restored))
        .expect("start server");
    let addr = server.addr();
    let (status, first) = get(addr, "/leads?driver=funding-rounds&top=50");
    assert_eq!(status, 200);
    assert!(
        first.contains("\"driver\":\"funding-rounds\",\"score\":"),
        "no funding-rounds leads served: {first}"
    );
    let (status, hires_body) = get(addr, "/leads?driver=executive-hires&top=50");
    assert_eq!(status, 200);
    assert!(
        hires_body.contains("\"driver\":\"executive-hires\",\"score\":"),
        "no executive-hires leads served: {hires_body}"
    );
    server.shutdown();

    // Restart from the same store: byte-identical /leads.
    let (restored, _) = store.load_latest().expect("scan").expect("generation");
    let server = etap_repro::serve::start(&ServeConfig::default(), Arc::new(restored))
        .expect("restart server");
    let (_, after_restart) = get(server.addr(), "/leads?driver=funding-rounds&top=50");
    assert_eq!(after_restart, first, "restart changed the served bytes");
    server.shutdown();

    // Thread-count determinism: a 4-thread build of the same snapshot
    // serves the same bytes as the 1-thread build.
    let snapshot4 = Arc::new(LeadSnapshot::build_parallel(
        Arc::clone(&trained),
        crawl.docs(),
        1,
        4,
    ));
    let server = etap_repro::serve::start(&ServeConfig::default(), snapshot4)
        .expect("start threads=4 server");
    let (_, threaded) = get(server.addr(), "/leads?driver=funding-rounds&top=50");
    assert_eq!(threaded, first, "thread count changed the served bytes");
    server.shutdown();

    let _ = std::fs::remove_dir_all(&root);
}
