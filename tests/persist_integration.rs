//! End-to-end tests of the persistence layer: model and event-book
//! round-trips through the `etap-persist` codec, the generation store's
//! corruption matrix, and the incremental `LeadSnapshot::extend`
//! bit-identity guarantee that makes warm publishes trustworthy.

use etap_repro::corpus::{SyntheticWeb, WebConfig};
use etap_repro::serve::{GenerationStore, LeadSnapshot};
use etap_repro::system::persist;
use etap_repro::{DriverSpec, Etap, EtapConfig, SalesDriver, TrainedEtap};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

fn trained() -> Arc<TrainedEtap> {
    static TRAINED: OnceLock<Arc<TrainedEtap>> = OnceLock::new();
    Arc::clone(TRAINED.get_or_init(|| {
        let web = SyntheticWeb::generate(WebConfig {
            total_docs: 600,
            ..WebConfig::default()
        });
        let mut config = EtapConfig::paper();
        config.training.top_docs_per_query = 50;
        config.training.negative_snippets = 900;
        config.training.pure_positives = 10;
        config.drivers = vec![
            DriverSpec::builtin(SalesDriver::ChangeInManagement),
            DriverSpec::builtin(SalesDriver::RevenueGrowth),
        ];
        Arc::new(Etap::new(config).train(&web))
    }))
}

fn crawl(seed: u64, docs: usize) -> SyntheticWeb {
    SyntheticWeb::generate(WebConfig {
        total_docs: docs,
        seed,
        ..WebConfig::default()
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "etap_persist_it_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn trained_system_roundtrips_through_model_files() {
    let dir = temp_dir("models");
    let system = trained();
    for driver in &system.drivers {
        let path = dir.join(format!("{}.model", driver.spec.driver.id()));
        persist::save(driver, &path).expect("save");
    }

    // Reload in the same order and verify identical event identification.
    let restored: Vec<_> = system
        .drivers
        .iter()
        .map(|d| {
            persist::load(&dir.join(format!("{}.model", d.spec.driver.id()))).expect("load")
        })
        .collect();
    let restored = TrainedEtap::from_drivers(restored, system.snippet_window());

    let fresh = crawl(21, 60);
    let original_events = system.identify_events(fresh.docs());
    let restored_events = restored.identify_events(fresh.docs());
    assert_eq!(original_events, restored_events, "bit-identical identification");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serialized_model_is_v2_codec_with_checksum() {
    let system = trained();
    let text = persist::to_string(&system.drivers[0]);
    assert!(text.starts_with("ETAP MODEL v2\n"), "{}", &text[..40]);
    let trailer = text.lines().last().expect("trailer");
    assert!(trailer.starts_with("#sum "), "{trailer}");
    // The codec layer validates it end to end.
    let (version, _) =
        etap_repro::persist::parse(&text, "MODEL", 2).expect("codec-valid document");
    assert_eq!(version, 2);
}

#[test]
fn lead_book_roundtrips_bit_exactly_through_leads_document() {
    let system = trained();
    let book = system.lead_book(crawl(22, 60).docs());
    assert!(book.len() > 0, "need events to make the test meaningful");
    let text = persist::book_to_string(&book);
    let restored = persist::book_from_str(&text).expect("parse book");
    assert_eq!(restored, book);
    // Re-serialization is byte-identical — the stable fixpoint the
    // generation store's checksums rely on.
    assert_eq!(persist::book_to_string(&restored), text);
}

#[test]
fn extend_is_bit_identical_to_full_rebuild_for_any_thread_count() {
    let system = trained();
    let old = crawl(30, 50);
    let delta = crawl(31, 30);
    let mut union: Vec<_> = old.docs().to_vec();
    union.extend(delta.docs().iter().cloned());

    let full = LeadSnapshot::build(Arc::clone(&system), &union, 2);
    let base = LeadSnapshot::build(Arc::clone(&system), old.docs(), 1);
    for threads in [1usize, 4] {
        let extended = LeadSnapshot::extend(&base, delta.docs(), 2, threads);
        assert_eq!(
            extended.book, full.book,
            "extend(threads={threads}) diverged from full rebuild"
        );
        // Byte-identical serialization, not just structural equality.
        assert_eq!(
            persist::events_to_string(&extended.book.events_owned()),
            persist::events_to_string(&full.book.events_owned()),
            "threads={threads}"
        );
    }
}

#[test]
fn extend_roundtrips_through_the_store() {
    // extend → publish → load → extend again: the reloaded generation
    // keeps extending exactly as the in-memory one would.
    let root = temp_dir("extend_store");
    let store = GenerationStore::open(&root).expect("open");
    let system = trained();
    let base = LeadSnapshot::build(Arc::clone(&system), crawl(40, 40).docs(), 1);
    store.publish(&base).expect("publish gen 1");

    let (reloaded, _) = store.load_latest().expect("scan").expect("gen 1");
    let delta = crawl(41, 25);
    let from_memory = LeadSnapshot::extend(&base, delta.docs(), 2, 0);
    let from_disk = LeadSnapshot::extend(&reloaded, delta.docs(), 2, 0);
    assert_eq!(from_memory.book, from_disk.book);

    store.publish(&from_disk).expect("publish gen 2");
    assert_eq!(store.generations().expect("list"), vec![1, 2]);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn store_corruption_matrix_falls_back_to_newest_valid() {
    let system = trained();
    let corruptions: [(&str, fn(&PathBuf)); 4] = [
        ("truncated_events", |dir| {
            let path = dir.join("events.leads");
            let text = std::fs::read_to_string(&path).unwrap();
            std::fs::write(&path, &text[..text.len() * 2 / 3]).unwrap();
        }),
        ("bitflip_manifest", |dir| {
            let path = dir.join("MANIFEST");
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, bytes).unwrap();
        }),
        ("future_model_version", |dir| {
            let model = std::fs::read_dir(dir)
                .unwrap()
                .filter_map(Result::ok)
                .map(|e| e.path())
                .find(|p| p.extension().is_some_and(|x| x == "model"))
                .expect("a model file");
            // A future-version model must invalidate the generation
            // even though the file is internally consistent; keep the
            // manifest in agreement by rewriting its checksum too —
            // the *codec* version check is what must fire.
            let text = std::fs::read_to_string(&model).unwrap();
            let body = text
                .strip_prefix("ETAP MODEL v2\n")
                .expect("v2 header")
                .to_string();
            let mut forged = String::from("ETAP MODEL v99\n");
            // Drop the old trailer, reseal with a fresh checksum.
            let without_trailer = &body[..body.rfind("#sum ").unwrap()];
            forged.push_str(without_trailer);
            let sum = etap_repro::persist::fnv1a64(forged.as_bytes());
            forged.push_str(&format!("#sum {sum:016x}\n"));
            let name = model.file_name().unwrap().to_owned();
            std::fs::write(&model, &forged).unwrap();
            // Update the manifest entry so only the version differs.
            rewrite_manifest_entry(dir, name.to_str().unwrap(), &forged);
        }),
        ("deleted_events_file", |dir| {
            std::fs::remove_file(dir.join("events.leads")).unwrap();
        }),
    ];

    for (tag, corrupt) in corruptions {
        let root = temp_dir(&format!("matrix_{tag}"));
        let store = GenerationStore::open(&root).expect("open");
        let gen1 = LeadSnapshot::build(Arc::clone(&system), crawl(50, 40).docs(), 1);
        store.publish(&gen1).expect("publish 1");
        let gen2 = LeadSnapshot::extend(&gen1, crawl(51, 20).docs(), 2, 0);
        store.publish(&gen2).expect("publish 2");

        corrupt(&root.join("gen-2"));

        assert!(store.load(2).is_err(), "{tag}: corrupt gen must not load");
        let (loaded, skipped) = store
            .load_latest()
            .expect("scan")
            .unwrap_or_else(|| panic!("{tag}: no fallback"));
        assert_eq!(loaded.generation, 1, "{tag}");
        assert_eq!(skipped.len(), 1, "{tag}: {skipped:?}");
        assert_eq!(loaded.book, gen1.book, "{tag}: fallback content intact");
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn torn_manifest_write_falls_back_to_previous_generation() {
    // Simulate power loss mid-way through writing gen-2's MANIFEST:
    // the file exists but holds only a prefix of its bytes. The store
    // must refuse the torn generation (no panic, no partial serve) and
    // fall back to gen 1 with a logged reason.
    let system = trained();
    let root = temp_dir("torn_manifest");
    let store = GenerationStore::open(&root).expect("open");
    let gen1 = LeadSnapshot::build(Arc::clone(&system), crawl(60, 40).docs(), 1);
    store.publish(&gen1).expect("publish 1");
    let gen2 = LeadSnapshot::extend(&gen1, crawl(61, 20).docs(), 2, 0);
    store.publish(&gen2).expect("publish 2");

    let manifest = root.join("gen-2").join("MANIFEST");
    let bytes = std::fs::read(&manifest).unwrap();
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&manifest, &bytes[..cut]).unwrap();
        assert!(store.load(2).is_err(), "cut={cut}: torn manifest must not load");
        let (loaded, skipped) = store
            .load_latest()
            .expect("scan survives the torn generation")
            .expect("fallback generation");
        assert_eq!(loaded.generation, 1, "cut={cut}");
        assert_eq!(loaded.book, gen1.book, "cut={cut}: fallback content intact");
        assert_eq!(skipped.len(), 1, "cut={cut}: {skipped:?}");
        assert_eq!(skipped[0].0, 2, "cut={cut}: skip reason names gen 2");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn generation_vanishing_between_listing_and_read_never_panics() {
    // Retention pruning (or an operator's rm -rf) can remove a
    // generation directory after a reader has listed it. Both shapes —
    // the directory emptied, and the directory gone entirely — must
    // surface as a fallback, never a panic.
    let system = trained();
    let root = temp_dir("vanishing_gen");
    let store = GenerationStore::open(&root).expect("open");
    let gen1 = LeadSnapshot::build(Arc::clone(&system), crawl(62, 40).docs(), 1);
    store.publish(&gen1).expect("publish 1");
    let gen2 = LeadSnapshot::extend(&gen1, crawl(63, 20).docs(), 2, 0);
    store.publish(&gen2).expect("publish 2");

    // Shape 1: gen-2 still listed, but its files are gone (deleted
    // between the directory listing and the manifest read).
    let listed = store.generations().expect("list");
    assert_eq!(listed, vec![1, 2]);
    for entry in std::fs::read_dir(root.join("gen-2")).unwrap() {
        std::fs::remove_file(entry.unwrap().path()).unwrap();
    }
    assert!(store.load(2).is_err(), "emptied generation must not load");
    let (loaded, skipped) = store
        .load_latest()
        .expect("scan")
        .expect("fallback generation");
    assert_eq!(loaded.generation, 1);
    assert_eq!(skipped.len(), 1, "{skipped:?}");

    // Shape 2: the directory itself is gone. A reader holding the old
    // listing gets an error (not a panic); a fresh scan serves gen 1.
    std::fs::remove_dir_all(root.join("gen-2")).unwrap();
    assert!(store.load(2).is_err(), "missing generation must error cleanly");
    let (loaded, skipped) = store
        .load_latest()
        .expect("scan")
        .expect("gen 1 still serves");
    assert_eq!(loaded.generation, 1);
    assert_eq!(loaded.book, gen1.book);
    assert!(skipped.is_empty(), "nothing listed, nothing skipped: {skipped:?}");
    let _ = std::fs::remove_dir_all(&root);
}

/// Replace one file's manifest entry (checksum + size) and reseal the
/// manifest, leaving everything else untouched.
fn rewrite_manifest_entry(dir: &PathBuf, name: &str, contents: &str) {
    let manifest_path = dir.join("MANIFEST");
    let text = std::fs::read_to_string(&manifest_path).unwrap();
    let mut out = String::new();
    for line in text.lines() {
        if line.starts_with("#sum ") {
            continue;
        }
        if line.starts_with("file\t") && line.contains(name) {
            out.push_str(&format!(
                "file\t{name}\t{:016x}\t{}\n",
                etap_repro::persist::fnv1a64(contents.as_bytes()),
                contents.len()
            ));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    let sum = etap_repro::persist::fnv1a64(out.as_bytes());
    out.push_str(&format!("#sum {sum:016x}\n"));
    std::fs::write(&manifest_path, out).unwrap();
}

#[test]
fn legacy_v1_model_files_still_serve() {
    // A v1 file written by hand in the old format must load and be
    // usable inside a TrainedEtap (the upgrade path for existing model
    // directories).
    let mut v1 = String::from("ETAP-MODEL v1\ndriver revenue_growth\n");
    v1.push_str("bigrams false\nprior -0.7 -0.7\nunseen -9.0 -9.0\nfeatures 2\n");
    v1.push_str("revenue\t-1.0\t-5.0\ngrowth\t-1.2\t-5.2\n");
    let dir = temp_dir("legacy");
    let path = dir.join("revenue_growth.model");
    std::fs::write(&path, &v1).unwrap();
    let restored = persist::load(&path).expect("legacy load");
    assert_eq!(restored.spec.driver, SalesDriver::RevenueGrowth);
    // Saving it back upgrades to v2.
    persist::save(&restored, &path).expect("resave");
    let upgraded = std::fs::read_to_string(&path).unwrap();
    assert!(upgraded.starts_with("ETAP MODEL v2\n"));
    assert!(persist::load(&path).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
