//! End-to-end test of the `etap-cli` binary: train → persist → scan →
//! score → companies, all through the real executable.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_etap-cli"))
}

fn temp_model_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("etap_cli_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_cli_workflow() {
    let models = temp_model_dir("flow");

    // train (small web, one driver, for speed)
    let out = cli()
        .args([
            "train",
            "--out",
            models.to_str().unwrap(),
            "--docs",
            "900",
            "--driver",
            "cim",
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let model_file = models.join("change_in_management.model");
    assert!(model_file.exists(), "model file written");

    // scan
    let out = cli()
        .args([
            "scan",
            "--models",
            models.to_str().unwrap(),
            "--docs",
            "80",
            "--top",
            "3",
        ])
        .output()
        .expect("run scan");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("change in management"), "{stdout}");

    // score a canonical trigger snippet
    let out = cli()
        .args([
            "score",
            "--model",
            model_file.to_str().unwrap(),
            "--text",
            "Acme Corp named Jane Roe as its new CEO on Monday.",
        ])
        .output()
        .expect("run score");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TRIGGER"), "{stdout}");

    // score background
    let out = cli()
        .args([
            "score",
            "--model",
            model_file.to_str().unwrap(),
            "--text",
            "Simmer the sauce for twenty minutes, stirring occasionally.",
        ])
        .output()
        .expect("run score bg");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ignore"), "{stdout}");

    // companies
    let out = cli()
        .args([
            "companies",
            "--models",
            models.to_str().unwrap(),
            "--docs",
            "80",
            "--top",
            "3",
        ])
        .output()
        .expect("run companies");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MRR"), "{stdout}");

    let _ = std::fs::remove_dir_all(&models);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn missing_required_flag_fails() {
    let out = cli().arg("train").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--out"), "{stderr}");
}
