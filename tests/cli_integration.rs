//! End-to-end test of the `etap-cli` binary: train → persist → scan →
//! score → companies, all through the real executable.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_etap-cli"))
}

fn temp_model_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("etap_cli_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_cli_workflow() {
    let models = temp_model_dir("flow");

    // train (small web, one driver, for speed)
    let out = cli()
        .args([
            "train",
            "--out",
            models.to_str().unwrap(),
            "--docs",
            "900",
            "--driver",
            "cim",
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let model_file = models.join("change_in_management.model");
    assert!(model_file.exists(), "model file written");

    // scan
    let out = cli()
        .args([
            "scan",
            "--models",
            models.to_str().unwrap(),
            "--docs",
            "80",
            "--top",
            "3",
        ])
        .output()
        .expect("run scan");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("change in management"), "{stdout}");

    // score a canonical trigger snippet
    let out = cli()
        .args([
            "score",
            "--model",
            model_file.to_str().unwrap(),
            "--text",
            "Acme Corp named Jane Roe as its new CEO on Monday.",
        ])
        .output()
        .expect("run score");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("TRIGGER"), "{stdout}");

    // score background
    let out = cli()
        .args([
            "score",
            "--model",
            model_file.to_str().unwrap(),
            "--text",
            "Simmer the sauce for twenty minutes, stirring occasionally.",
        ])
        .output()
        .expect("run score bg");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ignore"), "{stdout}");

    // companies
    let out = cli()
        .args([
            "companies",
            "--models",
            models.to_str().unwrap(),
            "--docs",
            "80",
            "--top",
            "3",
        ])
        .output()
        .expect("run companies");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MRR"), "{stdout}");

    let _ = std::fs::remove_dir_all(&models);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn missing_required_flag_fails() {
    let out = cli().arg("train").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--out"), "{stderr}");
}

#[test]
fn publish_generations_diff_workflow() {
    let models = temp_model_dir("store_models");
    let store = temp_model_dir("store_root");

    // Train once; both publishes below reuse these models.
    let out = cli()
        .args([
            "train",
            "--out",
            models.to_str().unwrap(),
            "--docs",
            "900",
            "--driver",
            "cim",
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // publish generation 1: full build from models + crawl.
    let out = cli()
        .args([
            "publish",
            "--store",
            store.to_str().unwrap(),
            "--models",
            models.to_str().unwrap(),
            "--docs",
            "80",
        ])
        .output()
        .expect("run publish");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("published generation 1"),
        "unexpected publish output: {stdout}"
    );
    assert!(store.join("gen-1").join("MANIFEST").exists());

    // publish generation 2: --extend over a different crawl seed.
    let out = cli()
        .args([
            "publish",
            "--store",
            store.to_str().unwrap(),
            "--extend",
            "--docs",
            "40",
            "--seed",
            "11",
        ])
        .output()
        .expect("run publish --extend");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("published generation 2"),
        "unexpected extend output: {stdout}"
    );

    // generations: both listed as valid.
    let out = cli()
        .args(["generations", "--store", store.to_str().unwrap()])
        .output()
        .expect("run generations");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let valid_rows = stdout.lines().filter(|l| l.ends_with("valid")).count();
    assert_eq!(valid_rows, 2, "expected 2 valid generations:\n{stdout}");
    assert!(!stdout.contains("INVALID"), "{stdout}");

    // diff: newest vs previous; extend only adds events, never removes.
    let out = cli()
        .args(["diff", "--store", store.to_str().unwrap()])
        .output()
        .expect("run diff");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let summary = stdout
        .lines()
        .find(|l| l.starts_with("gen 1 → gen 2:"))
        .unwrap_or_else(|| panic!("no diff summary in: {stdout}"));
    assert!(summary.ends_with("/ -0)"), "extend removed events: {summary}");

    // A corrupted generation shows as INVALID but the command succeeds.
    let manifest = store.join("gen-2").join("MANIFEST");
    let text = std::fs::read_to_string(&manifest).expect("read manifest");
    std::fs::write(&manifest, &text[..text.len() - 8]).expect("truncate manifest");
    let out = cli()
        .args(["generations", "--store", store.to_str().unwrap()])
        .output()
        .expect("run generations on corrupt store");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("INVALID"), "{stdout}");

    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn v1_and_v2_generations_of_same_crawl_diff_to_zero() {
    let models = temp_model_dir("fmt_models");
    let store = temp_model_dir("fmt_store");

    let out = cli()
        .args([
            "train",
            "--out",
            models.to_str().unwrap(),
            "--docs",
            "900",
            "--driver",
            "cim",
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Generation 1: the same crawl in LEADS v1 text.
    let out = cli()
        .args([
            "publish",
            "--store",
            store.to_str().unwrap(),
            "--models",
            models.to_str().unwrap(),
            "--docs",
            "80",
        ])
        .output()
        .expect("run publish v1");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(store.join("gen-1").join("events.leads").exists());

    // Generation 2: identical crawl (same docs, same default seed)
    // re-published as sharded LEADS v2 binary.
    let out = cli()
        .args([
            "publish",
            "--store",
            store.to_str().unwrap(),
            "--models",
            models.to_str().unwrap(),
            "--docs",
            "80",
            "--format",
            "v2",
            "--shards",
            "8",
        ])
        .output()
        .expect("run publish v2");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("published generation 2"),
        "unexpected v2 publish output: {stdout}"
    );
    assert!(store.join("gen-2").join("book.index").exists());
    assert!(store.join("gen-2").join("shards").is_dir());

    // Both formats are readable side by side and hold the exact same
    // multiset of events: the migration contract.
    let out = cli()
        .args(["generations", "--store", store.to_str().unwrap()])
        .output()
        .expect("run generations");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let valid_rows = stdout.lines().filter(|l| l.ends_with("valid")).count();
    assert_eq!(valid_rows, 2, "expected 2 valid generations:\n{stdout}");

    let out = cli()
        .args(["diff", "--store", store.to_str().unwrap()])
        .output()
        .expect("run diff");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let summary = stdout
        .lines()
        .find(|l| l.starts_with("gen 1 → gen 2:"))
        .unwrap_or_else(|| panic!("no diff summary in: {stdout}"));
    assert!(
        summary.ends_with("(+0 / -0)"),
        "v1 and v2 of the same crawl must agree byte-for-byte: {summary}"
    );

    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn exit_codes_classify_usage_corruption_and_transient_io() {
    // Usage errors (unknown command, missing flag) exit 2.
    let out = cli().arg("frobnicate").output().expect("run");
    assert_eq!(out.status.code(), Some(2), "unknown command");
    let out = cli().arg("train").output().expect("run");
    assert_eq!(out.status.code(), Some(2), "missing --out");

    // Transient I/O exits 4: the store root collides with a plain file,
    // so opening it fails at the filesystem layer.
    let file = std::env::temp_dir().join(format!("etap_cli_notadir_{}", std::process::id()));
    std::fs::write(&file, b"not a directory").expect("write blocker file");
    let out = cli()
        .args(["generations", "--store", file.to_str().unwrap()])
        .output()
        .expect("run generations");
    assert_eq!(
        out.status.code(),
        Some(4),
        "store under a file: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&file);

    // Corruption exits 3: diff against a generation whose MANIFEST is
    // truncated fails checksum validation.
    let models = temp_model_dir("exitcode_models");
    let store = temp_model_dir("exitcode_store");
    let out = cli()
        .args(["train", "--out", models.to_str().unwrap(), "--docs", "900", "--driver", "cim"])
        .output()
        .expect("run train");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    for seed in ["7", "11"] {
        let mut args = vec![
            "publish",
            "--store",
            store.to_str().unwrap(),
            "--models",
            models.to_str().unwrap(),
            "--docs",
            "60",
            "--seed",
            seed,
        ];
        if seed != "7" {
            args.push("--extend");
        }
        let out = cli().args(&args).output().expect("run publish");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    }
    let manifest = store.join("gen-2").join("MANIFEST");
    let text = std::fs::read_to_string(&manifest).expect("read manifest");
    std::fs::write(&manifest, &text[..text.len() - 8]).expect("truncate manifest");
    let out = cli()
        .args(["diff", "--store", store.to_str().unwrap(), "--from", "1", "--to", "2"])
        .output()
        .expect("run diff");
    assert_eq!(
        out.status.code(),
        Some(3),
        "diff on torn manifest: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn watch_runs_supervised_cycles_and_seals_generations() {
    let models = temp_model_dir("watch_models");
    let store = temp_model_dir("watch_store");

    let out = cli()
        .args(["train", "--out", models.to_str().unwrap(), "--docs", "900", "--driver", "cim"])
        .output()
        .expect("run train");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Cold start: watch builds generation 1, then runs 2 supervised
    // cycles under a deterministic fault plan (one delayed poll, one
    // panicking retrain — both must be absorbed by retries).
    let out = cli()
        .args([
            "watch",
            "--store",
            store.to_str().unwrap(),
            "--models",
            models.to_str().unwrap(),
            "--docs",
            "40",
            "--cycles",
            "2",
            "--interval-ms",
            "0",
        ])
        .env("ETAP_FAULTS", "corpus.poll=delay:2ms@0.5,retrain=panic@once")
        .env("ETAP_FAULT_SEED", "42")
        .output()
        .expect("run watch");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("fault injection armed"), "{stderr}");
    assert!(stderr.contains("watch done: 2 cycle(s), 0 failed"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("listening on http://"), "{stdout}");
    // Cold-built gen 1 + two cycles = gens 1..3 sealed on disk.
    for generation in 1..=3 {
        assert!(
            store.join(format!("gen-{generation}")).join("MANIFEST").exists(),
            "generation {generation} missing\n{stderr}"
        );
    }

    // Restarting warm-starts from generation 3 and keeps going.
    let out = cli()
        .args([
            "watch",
            "--store",
            store.to_str().unwrap(),
            "--docs",
            "40",
            "--cycles",
            "1",
            "--interval-ms",
            "0",
        ])
        .output()
        .expect("rerun watch");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("warm start from generation 3"), "{stderr}");
    assert!(stderr.contains("final generation 4"), "{stderr}");

    // A malformed fault spec is a usage error (exit 2).
    let out = cli()
        .args(["watch", "--store", store.to_str().unwrap(), "--cycles", "1"])
        .env("ETAP_FAULTS", "persist.write=bogus")
        .output()
        .expect("run watch with bad spec");
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&models);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn publish_extend_on_empty_store_fails() {
    let store = temp_model_dir("empty_store");
    let out = cli()
        .args([
            "publish",
            "--store",
            store.to_str().unwrap(),
            "--extend",
        ])
        .output()
        .expect("run publish");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("existing valid generation"),
        "unexpected error: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&store);
}
