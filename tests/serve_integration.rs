//! End-to-end tests of `etap-serve`: a real server on an ephemeral
//! port, driven over real sockets — every endpoint, the error paths
//! (404/400/405/413/408/503), a snapshot hot-swap under concurrent
//! load, and thread-count determinism of served responses.

use etap_repro::corpus::{SyntheticWeb, WebConfig};
use etap_repro::serve::{LeadSnapshot, ServeConfig, ServerHandle};
use etap_repro::system::{rank, AliasResolver};
use etap_repro::{DriverSpec, Etap, EtapConfig, SalesDriver, TrainedEtap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One trained system shared by every test in this binary (training is
/// the expensive part; the servers themselves are cheap).
fn trained() -> Arc<TrainedEtap> {
    static TRAINED: OnceLock<Arc<TrainedEtap>> = OnceLock::new();
    Arc::clone(TRAINED.get_or_init(|| {
        let web = SyntheticWeb::generate(WebConfig {
            total_docs: 600,
            ..WebConfig::default()
        });
        let mut config = EtapConfig::paper();
        config.training.top_docs_per_query = 50;
        config.training.negative_snippets = 900;
        config.training.pure_positives = 10;
        config.drivers = vec![DriverSpec::builtin(SalesDriver::ChangeInManagement)];
        Arc::new(Etap::new(config).train(&web))
    }))
}

fn crawl(seed: u64) -> SyntheticWeb {
    SyntheticWeb::generate(WebConfig {
        total_docs: 80,
        seed,
        ..WebConfig::default()
    })
}

fn boot(config: &ServeConfig) -> ServerHandle {
    let snapshot = Arc::new(LeadSnapshot::build(trained(), crawl(7).docs(), 1));
    etap_repro::serve::start(config, snapshot).expect("start server")
}

fn boot_default() -> ServerHandle {
    boot(&ServeConfig::default())
}

/// Raw HTTP exchange: send `raw` verbatim, return the full response.
fn exchange_raw(addr: SocketAddr, raw: &[u8]) -> String {
    try_exchange_raw(addr, raw).expect("exchange")
}

/// Like [`exchange_raw`] but fallible, for assertions that race against
/// server-side draining (a shed 503 can still be lost to an RST when
/// the client's bytes arrive after the acceptor's best-effort drain).
fn try_exchange_raw(addr: SocketAddr, raw: &[u8]) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(raw)?;
    let mut out = Vec::new();
    stream.read_to_end(&mut out)?;
    Ok(String::from_utf8_lossy(&out).into_owned())
}

fn get(addr: SocketAddr, target: &str) -> String {
    exchange_raw(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, target: &str, body: &str) -> String {
    exchange_raw(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"))
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map_or("", |(_, body)| body)
}

fn header_of<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    let head = response.split("\r\n\r\n").next()?;
    head.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        (n.eq_ignore_ascii_case(name)).then(|| v.trim())
    })
}

#[test]
fn healthz_and_metrics() {
    let server = boot_default();
    let addr = server.addr();

    let health = get(addr, "/healthz");
    assert_eq!(status_of(&health), 200);
    assert_eq!(
        body_of(&health),
        "{\"ok\": true, \"generation\": 1, \"status\": \"healthy\"}\n"
    );
    assert_eq!(header_of(&health, "X-Etap-Generation"), Some("1"));

    let metrics = get(addr, "/metrics");
    assert_eq!(status_of(&metrics), 200);
    let body = body_of(&metrics);
    for family in [
        "etap_requests_total",
        "etap_responses_total{class=\"2xx\"}",
        "etap_shed_total 0",
        "etap_queue_depth",
        "etap_snapshot_generation 1",
        "etap_request_latency_ms{quantile=\"0.99\"}",
    ] {
        assert!(body.contains(family), "missing {family} in:\n{body}");
    }
    server.shutdown();
}

#[test]
fn leads_match_offline_ranking_and_companies_match_mrr() {
    let server = boot_default();
    let addr = server.addr();
    let fresh = crawl(7);

    // The offline path the server must agree with byte-for-byte.
    let events = rank::rank_by_score(trained().identify_events(fresh.docs()));
    assert!(!events.is_empty(), "test crawl produced no events");
    let mut resolver = AliasResolver::new();
    let companies = rank::rank_companies_resolved(&events, &mut resolver);

    let response = get(addr, &format!("/leads?top={}", events.len()));
    assert_eq!(status_of(&response), 200);
    let body = body_of(&response);
    assert!(body.starts_with("{\"generation\":1,"), "{body}");
    // Every offline event appears, in offline rank order.
    let mut cursor = 0usize;
    for (i, e) in events.iter().enumerate() {
        let needle = format!("\"rank\":{},\"driver\":\"{}\"", i + 1, e.driver.id());
        let at = body[cursor..]
            .find(&needle)
            .unwrap_or_else(|| panic!("event {i} out of order: {needle}"));
        cursor += at;
        let snippet_at = body[cursor..].find(&etap_repro::serve::json::quote(&e.snippet));
        assert!(snippet_at.is_some(), "snippet of event {i} missing");
    }

    // Driver filter returns the same events restricted to that driver.
    let filtered = get(addr, "/leads?driver=cim&top=1000");
    let fbody = body_of(&filtered);
    let offline_cim = events
        .iter()
        .filter(|e| e.driver == SalesDriver::ChangeInManagement)
        .count();
    assert_eq!(
        fbody.matches("\"driver\":\"change_in_management\"").count(),
        offline_cim + 1, // +1: the response's own top-level driver field
        "{fbody}"
    );

    // Company ranking matches Eq. 2 MRR order.
    let response = get(addr, &format!("/companies?top={}", companies.len()));
    let cbody = body_of(&response);
    let mut cursor = 0usize;
    for (i, c) in companies.iter().enumerate() {
        let needle = format!(
            "\"rank\":{},\"company\":{}",
            i + 1,
            etap_repro::serve::json::quote(&c.company)
        );
        let at = cbody[cursor..]
            .find(&needle)
            .unwrap_or_else(|| panic!("company {i} ({}) out of order:\n{cbody}", c.company));
        cursor += at;
    }

    // Per-company events endpoint: the top company's events, count equal
    // to its Eq. 2 event count, alias lookup included.
    let top_company = &companies[0];
    let response = get(
        addr,
        &format!(
            "/companies/{}/events",
            top_company.company.replace(' ', "%20")
        ),
    );
    assert_eq!(status_of(&response), 200);
    let ebody = body_of(&response);
    assert!(ebody.contains(&format!(
        "\"event_count\":{}",
        top_company.events
    )));

    server.shutdown();
}

#[test]
fn score_endpoint_scores_snippets() {
    let server = boot_default();
    let addr = server.addr();

    let on_topic = post(
        addr,
        "/score?driver=cim",
        "Acme Corp named Jane Roe as its new CEO on Monday.",
    );
    assert_eq!(status_of(&on_topic), 200);
    let body = body_of(&on_topic);
    assert!(body.contains("\"driver\":\"change_in_management\""), "{body}");
    assert!(body.contains("\"trigger\":true"), "{body}");

    let off_topic = post(
        addr,
        "/score",
        "Simmer the sauce for twenty minutes, stirring occasionally.",
    );
    assert_eq!(status_of(&off_topic), 200);
    assert!(body_of(&off_topic).contains("\"trigger\":false"));

    // Unknown driver key → 404 with a JSON error body (clients match on
    // it programmatically); driver without a model → 404; empty → 400.
    let unknown = post(addr, "/score?driver=astrology", "x");
    assert_eq!(status_of(&unknown), 404);
    assert!(
        body_of(&unknown).contains("\"error\":\"unknown driver key: astrology\""),
        "{unknown}"
    );
    assert_eq!(status_of(&post(addr, "/score?driver=ma", "some text")), 404);
    assert_eq!(status_of(&post(addr, "/score", "   ")), 400);

    server.shutdown();
}

#[test]
fn icp_endpoint_scores_companies_with_explanations() {
    let server = boot_default();
    let addr = server.addr();

    // Wildcard ICP: everything fits, score 100, three explained factors.
    let r = get(addr, "/score?company=Acme%20Corp");
    assert_eq!(status_of(&r), 200);
    let body = body_of(&r);
    assert!(body.contains("\"company\":\"Acme Corp\""), "{body}");
    assert!(body.contains("\"icp_score\":100"), "{body}");
    for factor in ["industry", "size", "region"] {
        assert!(body.contains(&format!("\"factor\":\"{factor}\"")), "{body}");
    }
    assert!(body.contains("\"explanation\":"), "{body}");

    // Target an industry the company is *not* in: the score drops and
    // the industry factor explains why.
    let profile = etap_repro::system::icp::profile_for("Acme Corp");
    let other = etap_repro::system::icp::INDUSTRIES
        .iter()
        .find(|&&i| i != profile.industry)
        .unwrap();
    let r = get(addr, &format!("/score?company=Acme%20Corp&industry={other}"));
    assert_eq!(status_of(&r), 200);
    let body = body_of(&r);
    assert!(!body.contains("\"icp_score\":100"), "{body}");
    assert!(body.contains("not among target industries"), "{body}");

    // Weight parameters are honored (all weight on a passing factor →
    // back to 100) and bad numerics are 400s.
    let r = get(
        addr,
        &format!("/score?company=Acme%20Corp&industry={other}&w_industry=0&w_size=1&w_region=1"),
    );
    assert!(body_of(&r).contains("\"icp_score\":100"), "{r}");
    assert_eq!(status_of(&get(addr, "/score?company=A&size_min=banana")), 400);
    assert_eq!(status_of(&get(addr, "/score?company=A&w_size=-1")), 400);

    // A driver parameter adds the company's trigger-event count.
    let r = get(addr, "/score?company=Acme%20Corp&driver=cim");
    assert_eq!(status_of(&r), 200);
    let body = body_of(&r);
    assert!(body.contains("\"driver\":\"change_in_management\""), "{body}");
    assert!(body.contains("\"driver_events\":"), "{body}");

    server.shutdown();
}

#[test]
fn leads_icp_enrichment_is_opt_in() {
    let server = boot_default();
    let addr = server.addr();

    // Default /leads carries no ICP fields (byte-stability contract).
    let plain = body_of(&get(addr, "/leads?top=10")).to_string();
    assert!(!plain.contains("\"icp\""), "{plain}");

    // icp=1 adds a score per lead for its first extracted company.
    let enriched = body_of(&get(addr, "/leads?top=10&icp=1")).to_string();
    assert!(enriched.contains("\"icp\":{\"company\":"), "{enriched}");
    assert!(enriched.contains("\"score\":100"), "{enriched}");

    // Stripping the enrichment objects recovers the plain body exactly.
    let mut stripped = enriched.clone();
    while let Some(at) = stripped.find(",\"icp\":{") {
        let end = stripped[at..].find('}').unwrap() + at + 1;
        stripped.replace_range(at..end, "");
    }
    assert_eq!(stripped, plain);

    server.shutdown();
}

#[test]
fn error_paths() {
    let mut config = ServeConfig::default();
    config.max_body_bytes = 512;
    config.deadline_ms = 300;
    let server = boot(&config);
    let addr = server.addr();

    // 404 unknown route; unknown company.
    assert_eq!(status_of(&get(addr, "/nope")), 404);
    assert_eq!(status_of(&get(addr, "/companies/No%20Such%20Co/events")), 404);
    // Degenerate company-events paths where the "/companies/" prefix
    // and "/events" suffix overlap or enclose an empty name must 404
    // instead of panicking the worker that slices the name out.
    for degenerate in ["/companies/events", "/companies//events", "/companies/"] {
        assert_eq!(status_of(&get(addr, degenerate)), 404, "{degenerate}");
    }
    // No worker died on those: the server still answers, and the panic
    // counter in the exposition is zero.
    let metrics = get(addr, "/metrics");
    assert_eq!(status_of(&metrics), 200);
    assert!(
        body_of(&metrics).contains("etap_worker_panics_total 0"),
        "{metrics}"
    );
    // 405 wrong method.
    assert_eq!(status_of(&post(addr, "/leads", "x")), 405);
    // 400 malformed request line.
    let garbage = exchange_raw(addr, b"GARBAGE\r\n\r\n");
    assert_eq!(status_of(&garbage), 400);
    // 400 bad query parameter (GET /score is the ICP endpoint and
    // requires a company).
    assert_eq!(status_of(&get(addr, "/leads?top=banana")), 400);
    assert_eq!(status_of(&get(addr, "/score")), 400);
    // 404 unknown driver key, JSON error body.
    let unknown = get(addr, "/leads?driver=astrology");
    assert_eq!(status_of(&unknown), 404);
    assert!(
        body_of(&unknown).contains("\"error\":\"unknown driver key: astrology\""),
        "{unknown}"
    );
    assert_eq!(status_of(&get(addr, "/score?company=Acme&driver=astrology")), 404);
    // 413 oversized body (declared up front).
    let big = "x".repeat(4096);
    let response = post(addr, "/score", &big);
    assert_eq!(status_of(&response), 413);
    // 408 deadline exceeded mid-read: send half a request and stall.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /leads HTTP/1.1\r\nHos").expect("write");
    let mut out = Vec::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.read_to_end(&mut out).expect("read");
    let response = String::from_utf8_lossy(&out);
    assert_eq!(status_of(&response), 408, "{response}");

    server.shutdown();
}

#[test]
fn backpressure_sheds_with_retry_after() {
    let mut config = ServeConfig::default();
    config.workers = 1;
    config.queue_capacity = 1;
    config.deadline_ms = 1_000;
    let server = boot(&config);
    let addr = server.addr();

    // Occupy the single worker with a stalled request…
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled.write_all(b"GET /leads HTTP/1.1\r\n").expect("write");
    std::thread::sleep(Duration::from_millis(100)); // worker now blocked reading
    // …fill the queue…
    let mut queued = TcpStream::connect(addr).expect("connect");
    queued.write_all(b"GET /healthz HTTP/1.1\r\n").expect("write");
    std::thread::sleep(Duration::from_millis(100));
    // …then the next connection must be shed instantly with 503.
    let shed = get(addr, "/healthz");
    assert_eq!(status_of(&shed), 503, "{shed}");
    assert_eq!(header_of(&shed, "Retry-After"), Some("1"));

    drop(stalled);
    drop(queued);
    // Metrics recorded the shed. The worker drains the dropped
    // connections asynchronously, so poll: until the queue frees up the
    // metrics request may itself be shed (raising the count past 1) or
    // even lose its 503 to a reset — only the eventual 200 matters.
    let raw = b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    let mut served = None;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        if let Ok(metrics) = try_exchange_raw(addr, raw) {
            if status_of(&metrics) == 200 {
                served = Some(metrics);
                break;
            }
        }
    }
    let metrics = served.expect("metrics never served after sheds");
    let shed_count: u64 = body_of(&metrics)
        .lines()
        .find_map(|line| line.strip_prefix("etap_shed_total "))
        .expect("etap_shed_total family present")
        .trim()
        .parse()
        .expect("etap_shed_total is a counter");
    assert!(shed_count >= 1, "{metrics}");
    server.shutdown();
}

#[test]
fn hot_swap_never_mixes_generations() {
    let server = Arc::new(boot_default());
    let addr = server.addr();

    // The two generations' exact /leads bodies (deterministic servers
    // mean full-body equality is the strongest possible assertion).
    let body_gen1 = body_of(&get(addr, "/leads?top=5")).to_string();
    assert!(body_gen1.contains("\"generation\":1"));

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for _ in 0..4 {
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut bodies = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let response = get(addr, "/leads?top=5");
                assert_eq!(status_of(&response), 200);
                let generation_header = header_of(&response, "X-Etap-Generation")
                    .expect("generation header")
                    .to_string();
                bodies.push((generation_header, body_of(&response).to_string()));
            }
            bodies
        }));
    }

    // Publish generation 2 (different crawl) mid-traffic.
    std::thread::sleep(Duration::from_millis(150));
    let book2 = trained().lead_book(crawl(99).docs());
    let published = server.publish(book2, trained());
    assert_eq!(published, 2);
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let body_gen2 = body_of(&get(addr, "/leads?top=5")).to_string();
    assert!(body_gen2.contains("\"generation\":2"));
    assert_ne!(body_gen1, body_gen2, "different crawls must differ");

    let mut saw = [false, false];
    for client in clients {
        for (generation_header, body) in client.join().expect("client thread") {
            // Header and body agree, and the body is exactly one of the
            // two generations' canonical outputs — nothing in between.
            if body == body_gen1 {
                assert_eq!(generation_header, "1");
                saw[0] = true;
            } else if body == body_gen2 {
                assert_eq!(generation_header, "2");
                saw[1] = true;
            } else {
                panic!("mixed-generation response: {body}");
            }
        }
    }
    assert!(saw[0], "no responses observed from generation 1");
    assert!(saw[1], "no responses observed from generation 2");

    match Arc::try_unwrap(server) {
        Ok(server) => server.shutdown(),
        Err(_) => panic!("client threads still hold the server"),
    }
}

#[test]
fn served_responses_are_identical_for_any_thread_count() {
    let fresh = crawl(7);
    let mut bodies = Vec::new();
    for threads in [1usize, 4] {
        let snapshot = Arc::new(LeadSnapshot::build_parallel(
            trained(),
            fresh.docs(),
            1,
            threads,
        ));
        let server =
            etap_repro::serve::start(&ServeConfig::default(), snapshot).expect("start server");
        let addr = server.addr();
        let leads = body_of(&get(addr, "/leads?top=50")).to_string();
        let companies = body_of(&get(addr, "/companies?top=50")).to_string();
        server.shutdown();
        bodies.push((leads, companies));
    }
    assert_eq!(bodies[0], bodies[1], "threads must not change responses");
}

#[test]
fn graceful_shutdown_completes_inflight_requests() {
    let server = boot_default();
    let addr = server.addr();
    // A request in flight when shutdown starts still gets its response:
    // open the connection first, then shut down concurrently.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let shutdown = std::thread::spawn(move || server.shutdown());
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("write");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read");
    let response = String::from_utf8_lossy(&out);
    // Either it was served (200) before the acceptor stopped, or the
    // connection was dropped by shutdown (empty) — but never a hang.
    if !out.is_empty() {
        assert_eq!(status_of(&response), 200, "{response}");
    }
    shutdown.join().expect("shutdown thread");
    // The port is released: a fresh bind on the same address succeeds.
    let rebind = std::net::TcpListener::bind(addr);
    assert!(rebind.is_ok(), "{rebind:?}");
}

/// Read exactly one HTTP response (headers + Content-Length body) from
/// a stream that stays open — the keep-alive client's read primitive
/// (`read_to_end` would block until the server closes). `carry` holds
/// read-ahead bytes of the *next* response when the server's writes
/// coalesce into one packet — the client-side mirror of the server's
/// request carry buffer. Pass a fresh `Vec` per connection.
fn read_one_response(stream: &mut TcpStream, carry: &mut Vec<u8>) -> String {
    let mut buf = std::mem::take(carry);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "connection closed mid-response: {buf:?}");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (n, v) = l.split_once(':')?;
            n.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .expect("Content-Length header");
    while buf.len() < header_end + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    *carry = buf.split_off(header_end + content_length);
    String::from_utf8_lossy(&buf).into_owned()
}

#[test]
fn keepalive_serves_many_requests_on_one_connection() {
    let server = boot_default();
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut carry = Vec::new();
    for i in 0..5 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        let response = read_one_response(&mut stream, &mut carry);
        assert_eq!(status_of(&response), 200, "request {i}: {response}");
        assert_eq!(
            header_of(&response, "Connection"),
            Some("keep-alive"),
            "request {i}"
        );
    }
    // The final request closes explicitly and the server honors it.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("write");
    let response = read_one_response(&mut stream, &mut carry);
    assert_eq!(header_of(&response, "Connection"), Some("close"));
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read eof");
    assert!(rest.is_empty(), "server closed after Connection: close");

    let metrics = get(addr, "/metrics");
    let body = body_of(&metrics);
    let reuses: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("etap_keepalive_reuses_total "))
        .and_then(|v| v.parse().ok())
        .expect("keepalive metric");
    assert!(reuses >= 5, "expected >=5 reuses, metrics:\n{body}");
    server.shutdown();
}

#[test]
fn keepalive_cap_closes_connection() {
    let config = ServeConfig {
        keepalive_requests: 3,
        ..ServeConfig::default()
    };
    let server = boot(&config);
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut carry = Vec::new();
    for i in 0..3 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        let response = read_one_response(&mut stream, &mut carry);
        let expected = if i == 2 { "close" } else { "keep-alive" };
        assert_eq!(
            header_of(&response, "Connection"),
            Some(expected),
            "request {i}: {response}"
        );
    }
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read eof");
    assert!(rest.is_empty(), "server closed at the cap");
    server.shutdown();
}

#[test]
fn keepalive_pipelined_bytes_are_not_lost() {
    // Two requests written in one packet: the read-ahead bytes of the
    // second must be carried over, not dropped.
    let server = boot_default();
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nGET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        .expect("write both");
    let mut carry = Vec::new();
    let first = read_one_response(&mut stream, &mut carry);
    assert_eq!(status_of(&first), 200, "{first}");
    let second = read_one_response(&mut stream, &mut carry);
    assert_eq!(status_of(&second), 200, "{second}");
    assert_eq!(header_of(&second, "Connection"), Some("close"));
    server.shutdown();
}

#[test]
fn http10_defaults_to_close() {
    let server = boot_default();
    let addr = server.addr();
    let response = exchange_raw(addr, b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n");
    assert_eq!(status_of(&response), 200);
    assert_eq!(header_of(&response, "Connection"), Some("close"));
    server.shutdown();
}

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("etap_serve_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn publishes_persist_and_warm_start_serves_identical_responses() {
    let root = temp_store_dir("warm");
    let config = ServeConfig {
        store: Some(root.clone()),
        ..ServeConfig::default()
    };
    let server = boot(&config);
    let addr = server.addr();

    // Publish generation 2 on top of the boot snapshot.
    let next = crawl(11);
    let snapshot = server.snapshot();
    let gen2 = LeadSnapshot::extend(&snapshot, next.docs(), 2, 0);
    server.publish_snapshot(Arc::new(gen2));

    let leads_before = body_of(&get(addr, "/leads?top=50")).to_string();
    let companies_before = body_of(&get(addr, "/companies?top=50")).to_string();
    server.shutdown();

    // "Restart": a brand-new server warm-started purely from disk.
    let store = etap_repro::serve::GenerationStore::open(&root).expect("open store");
    let (restored, skipped) = store.load_latest().expect("scan").expect("valid generation");
    assert!(skipped.is_empty(), "{skipped:?}");
    assert_eq!(restored.generation, 2, "resumes at the newest generation");
    let server2 = etap_repro::serve::start(&config, Arc::new(restored)).expect("restart");
    let addr2 = server2.addr();
    assert_eq!(
        body_of(&get(addr2, "/leads?top=50")),
        leads_before,
        "byte-identical /leads after restart"
    );
    assert_eq!(
        body_of(&get(addr2, "/companies?top=50")),
        companies_before,
        "byte-identical /companies after restart"
    );
    // Generation numbering resumes monotonically.
    let gen3 = server2.publish(server2.snapshot().book.clone(), trained());
    assert_eq!(gen3, 3);
    assert!(store.generations().expect("list").contains(&3));
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_newest_generation_falls_back_without_panics() {
    let root = temp_store_dir("corrupt");
    let config = ServeConfig {
        store: Some(root.clone()),
        ..ServeConfig::default()
    };
    let server = boot(&config);
    let snapshot = server.snapshot();
    let gen2 = LeadSnapshot::extend(&snapshot, crawl(12).docs(), 2, 0);
    server.publish_snapshot(Arc::new(gen2));
    server.shutdown();

    // Corrupt the newest generation's event file on disk.
    let victim = root.join("gen-2").join("events.leads");
    let mut bytes = std::fs::read(&victim).expect("read victim");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, bytes).expect("rewrite");

    let store = etap_repro::serve::GenerationStore::open(&root).expect("open store");
    let (restored, skipped) = store.load_latest().expect("scan").expect("fallback");
    assert_eq!(restored.generation, 1, "fell back to the newest valid");
    assert_eq!(skipped.len(), 1);
    assert_eq!(skipped[0].0, 2);

    // The fallback snapshot serves; no worker dies on the way.
    let server2 = etap_repro::serve::start(&config, Arc::new(restored)).expect("restart");
    let addr2 = server2.addr();
    assert_eq!(status_of(&get(addr2, "/leads?top=10")), 200);
    let metrics = get(addr2, "/metrics");
    assert!(
        body_of(&metrics).contains("etap_worker_panics_total 0"),
        "{metrics}"
    );
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
