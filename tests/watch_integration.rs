//! End-to-end tests of the continuous-ingest watch daemon: supervised
//! cycles against a live server + generation store, deterministic
//! fault-injection replay, degraded mode and recovery.
//!
//! The fault registry is process-global, so every test that arms it
//! runs under [`fault_lock`] and resets the registry before returning.

use etap_repro::corpus::{SyntheticWeb, WebConfig};
use etap_repro::runtime::fault::{self, FaultPlan, TraceEntry};
use etap_repro::runtime::supervise::RetryPolicy;
use etap_repro::serve::{watch, GenerationStore, LeadSnapshot, ServeConfig, WatchConfig};
use etap_repro::{DriverSpec, Etap, EtapConfig, SalesDriver, TrainedEtap};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serialize tests that install the process-global fault registry.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn trained() -> Arc<TrainedEtap> {
    static TRAINED: OnceLock<Arc<TrainedEtap>> = OnceLock::new();
    Arc::clone(TRAINED.get_or_init(|| {
        let web = SyntheticWeb::generate(WebConfig {
            total_docs: 500,
            ..WebConfig::default()
        });
        let mut config = EtapConfig::paper();
        config.training.top_docs_per_query = 50;
        config.training.negative_snippets = 750;
        config.training.pure_positives = 10;
        config.drivers = vec![
            DriverSpec::builtin(SalesDriver::MergersAcquisitions),
            DriverSpec::builtin(SalesDriver::RevenueGrowth),
        ];
        Arc::new(Etap::new(config).train(&web))
    }))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("etap_watch_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// A quiet test server on an ephemeral port, storeless (the watch loop
/// owns persistence).
fn test_server(snapshot: Arc<LeadSnapshot>) -> etap_repro::serve::ServerHandle {
    let config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    etap_repro::serve::start(&config, snapshot).expect("server start")
}

/// Fast retry policy so injected failures don't slow the suite.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        jitter_seed: 0x5_0BE5,
    }
}

fn fast_config(cycles: u64, threads: usize) -> WatchConfig {
    WatchConfig {
        interval: Duration::ZERO,
        cycles: Some(cycles),
        poll_docs: 30,
        poll_seed: 99,
        threads,
        stage_timeout: Duration::from_secs(60),
        retry: fast_retry(),
        degrade_after: 2,
        prior_blend: 0.1,
        drivers: etap_repro::DriverSet::default(),
    }
}

/// Seal generation 1 into a fresh store (fault-free) and return
/// everything a watch run needs.
fn seeded_store(tag: &str) -> (PathBuf, GenerationStore, Arc<LeadSnapshot>) {
    let root = temp_dir(tag);
    let store = GenerationStore::open(&root)
        .expect("open")
        .with_retention(16);
    let crawl = SyntheticWeb::generate(WebConfig {
        seed: watch::poll_batch_seed(99, 1),
        ..WebConfig::with_docs(30)
    });
    let gen1 = Arc::new(LeadSnapshot::build(trained(), crawl.docs(), 1));
    store.publish(&gen1).expect("seal generation 1");
    (root, store, gen1)
}

const REPLAY_SPEC: &str = "persist.write=io@0.1,corpus.poll=delay:2ms@0.5,retrain=panic@once";

/// One faulted watch run: returns the injection trace, the sealed
/// generations, and the newest sealed generation's `events.leads`
/// bytes.
fn faulted_run(tag: &str, threads: usize) -> (Vec<TraceEntry>, Vec<u64>, Vec<u8>) {
    let (root, store, gen1) = seeded_store(tag);
    let registry = fault::install(&FaultPlan::parse(REPLAY_SPEC, 42).expect("plan"));
    let server = test_server(gen1);
    let report = watch::run(&server, &store, &fast_config(4, threads));
    fault::reset();
    server.shutdown();

    let generations = store.generations().expect("list");
    let newest = *generations.last().expect("at least gen 1");
    assert_eq!(
        report.final_generation, newest,
        "served generation must equal the newest sealed one"
    );
    let bytes =
        std::fs::read(root.join(format!("gen-{newest}")).join("events.leads")).expect("events");
    let trace = registry.trace();
    let _ = std::fs::remove_dir_all(&root);
    (trace, generations, bytes)
}

#[test]
fn faulted_watch_replays_identically_across_thread_counts() {
    let _guard = fault_lock();
    let (trace1, gens1, bytes1) = faulted_run("replay_t1", 1);
    let (trace4, gens4, bytes4) = faulted_run("replay_t4", 4);

    assert!(
        !trace1.is_empty(),
        "the replay spec must actually inject something"
    );
    assert_eq!(trace1, trace4, "injection traces diverged across thread counts");
    assert_eq!(gens1, gens4, "sealed generations diverged");
    assert_eq!(bytes1, bytes4, "newest sealed events.leads bytes diverged");
    // The @once panic arm fired exactly once.
    assert_eq!(
        trace1.iter().filter(|e| e.point == "retrain").count(),
        1,
        "retrain panic must fire exactly once: {trace1:?}"
    );
}

#[test]
fn watch_advances_generations_and_prunes_with_retention() {
    let _guard = fault_lock();
    fault::reset();
    let (root, _store, gen1) = seeded_store("advance");
    let store = GenerationStore::open(&root).expect("reopen").with_retention(2);
    let server = test_server(gen1);
    let report = watch::run(&server, &store, &fast_config(3, 0));
    server.shutdown();

    assert_eq!(report.cycles, 3);
    assert_eq!(report.cycles_failed, 0, "{:?}", report.last_error);
    assert_eq!(report.final_generation, 4);
    assert!(!report.degraded);
    // Retention 2: only the newest two generations survive.
    assert_eq!(store.generations().expect("list"), vec![3, 4]);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn failing_publishes_degrade_without_swapping_then_recover() {
    let _guard = fault_lock();
    let (root, store, gen1) = seeded_store("degrade");
    let server = test_server(Arc::clone(&gen1));

    // Every store publish fails: cycles exhaust retries, and after
    // `degrade_after` consecutive failures the loop reports degraded.
    fault::install(&FaultPlan::parse("store.publish=io", 7).expect("plan"));
    let report = watch::run(&server, &store, &fast_config(3, 0));
    fault::reset();

    assert_eq!(report.cycles_failed, 3);
    assert!(report.degraded, "3 failed cycles past degrade_after=2");
    assert!(report.retries >= 2, "publish must have been retried");
    // The invariant under failure: nothing was sealed, nothing swapped.
    assert_eq!(store.generations().expect("list"), vec![1]);
    assert_eq!(server.snapshot().generation, 1);
    assert_eq!(
        server
            .metrics()
            .watch_degraded
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "degraded gauge must be raised"
    );

    // Faults cleared: the next cycle succeeds and clears degraded mode.
    let report = watch::run(&server, &store, &fast_config(1, 0));
    assert_eq!(report.cycles_failed, 0, "{:?}", report.last_error);
    assert!(!report.degraded, "one good cycle clears degraded mode");
    assert_eq!(report.final_generation, 2);
    assert_eq!(store.generations().expect("list"), vec![1, 2]);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restarted_watch_repolls_the_same_batch_for_a_generation() {
    let _guard = fault_lock();
    fault::reset();
    // Run one cycle from gen 1 in two independent daemons ("restart"):
    // both must seal a byte-identical generation 2, because the poll
    // batch for a generation is a pure function of (poll_seed, gen).
    let mut sealed = Vec::new();
    for tag in ["restart_a", "restart_b"] {
        let (root, store, gen1) = seeded_store(tag);
        let server = test_server(gen1);
        let report = watch::run(&server, &store, &fast_config(1, 0));
        server.shutdown();
        assert_eq!(report.final_generation, 2, "{:?}", report.last_error);
        sealed.push(std::fs::read(root.join("gen-2").join("events.leads")).expect("events"));
        let _ = std::fs::remove_dir_all(&root);
    }
    assert_eq!(sealed[0], sealed[1], "restarted daemon drifted");
}
