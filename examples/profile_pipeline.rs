//! Profile the ETAP pipeline end to end with the built-in stage timers.
//!
//! The runtime's `perf` module instruments every pipeline stage
//! (harvest, negative sampling, vectorization, de-noising, snippet
//! scan, annotation, scoring). The timers are compiled in but dormant —
//! a single relaxed atomic load per stage — until switched on, either
//! programmatically (as here) or from the environment:
//!
//! ```sh
//! ETAP_PERF=1 cargo run --release --example profile_pipeline
//! ```
//!
//! Either way this prints a per-stage table: calls, total ms, mean µs,
//! and each stage's share of instrumented time. This is the same timer
//! the benchmarks use to emit the `stages` column of
//! `BENCH_pipeline.json` / `BENCH_watch.json`.

use etap_repro::runtime::perf;
use etap_repro::{Etap, EtapConfig, SyntheticWeb, WebConfig};

fn main() {
    // Honor ETAP_PERF=1 if the user set it; otherwise switch the
    // timers on for the whole run.
    if !perf::enabled() {
        perf::set_enabled(true);
    }
    perf::reset();

    println!("Generating synthetic web…");
    let web = SyntheticWeb::generate(WebConfig::with_docs(1_500));

    println!("Training (instrumented)…");
    let system = Etap::new(EtapConfig::paper());
    let trained = system.train(&web);

    println!("\n=== training profile ===\n{}", perf::report());

    // Profile the scan path separately so the two phases don't blur:
    // training also scores snippets (the de-noising loop), and a mixed
    // report would hide which phase the scoring time belongs to.
    perf::reset();

    println!("Scanning fresh documents (instrumented)…");
    let fresh = SyntheticWeb::generate(WebConfig {
        seed: 2_026,
        ..WebConfig::with_docs(400)
    });
    let events = trained.identify_events(fresh.docs());
    println!("  {} trigger events flagged", events.len());

    let scan = perf::report();
    println!("\n=== scan profile ===\n{scan}");

    // The report is also queryable — e.g. how much of the scan was
    // NER/POS annotation vs classifier scoring:
    if let (Some(ann), Some(vec)) = (scan.stage("scan.annotate"), scan.stage("score.vectorize")) {
        println!(
            "annotation {:.0} ms vs feature extraction {:.0} ms",
            ann.total_ms(),
            vec.total_ms()
        );
    }
    println!("\nmachine-readable: {}", scan.to_json_ms());
}
