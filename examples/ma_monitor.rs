//! M&A monitor: the B2B scenario from the paper's introduction.
//!
//! "Mergers & acquisitions could be a sales driver for the IT industry …
//! mergers and acquisitions of companies could lead to the integration
//! of IT systems of the companies thereby generating demand for new IT
//! products." This example trains only the M&A driver, watches a stream
//! of fresh news, and produces the prioritized call list a sales team
//! would work from.
//!
//! ```sh
//! cargo run --release --example ma_monitor
//! ```

use etap_repro::system::rank;
use etap_repro::{DriverSpec, Etap, EtapConfig, SalesDriver, SyntheticWeb, WebConfig};

fn main() {
    let web = SyntheticWeb::generate(WebConfig::with_docs(2_000));

    let mut config = EtapConfig::paper();
    config.drivers = vec![DriverSpec::builtin(SalesDriver::MergersAcquisitions)];
    let trained = Etap::new(config).train(&web);
    let report = &trained.drivers[0].report;
    println!(
        "Trained M&A classifier: {} docs fetched by smart queries, {} noisy positives → {} retained.",
        report.docs_fetched, report.noisy_positives, report.retained_positives
    );

    // A week of fresh news.
    let news = SyntheticWeb::generate(WebConfig {
        seed: 77,
        ..WebConfig::with_docs(400)
    });
    let events = trained.identify_events(news.docs());

    // Deduplicate per document: keep each document's best snippet.
    let mut best_per_doc: Vec<&etap_repro::TriggerEvent> = Vec::new();
    for e in &events {
        match best_per_doc.iter_mut().find(|b| b.doc_id == e.doc_id) {
            Some(b) if b.score < e.score => *b = e,
            Some(_) => {}
            None => best_per_doc.push(e),
        }
    }
    println!(
        "\n{} M&A trigger events across {} documents.",
        events.len(),
        best_per_doc.len()
    );

    let ranked = rank::rank_by_score(events.clone());
    println!("\n=== Alert queue (classifier-ranked) ===");
    for (i, e) in ranked.iter().take(10).enumerate() {
        println!("{:>2}. [{:.3}] {}", i + 1, e.score, e.url);
        println!("      {}", wrap(&e.snippet, 88));
        if !e.companies.is_empty() {
            println!("      companies: {}", e.companies.join(", "));
        }
    }

    // The call list: companies involved in the strongest M&A events are
    // prospects for systems-integration products.
    let companies = rank::rank_companies(&events);
    println!("\n=== Prospect call list (MRR, Eq. 2) ===");
    for (i, c) in companies.iter().take(12).enumerate() {
        println!(
            "{:>2}. {:<30} MRR={:.3} events={}",
            i + 1,
            c.company,
            c.mrr,
            c.events
        );
    }
}

fn wrap(s: &str, width: usize) -> String {
    let mut out = String::new();
    let mut line = 0;
    for word in s.split_whitespace() {
        if line + word.len() + 1 > width {
            out.push_str("\n      ");
            line = 0;
        } else if !out.is_empty() {
            out.push(' ');
            line += 1;
        }
        out.push_str(word);
        line += word.len();
    }
    out
}
