//! Continuous monitoring: the deployed-ETAP loop, on the real daemon.
//!
//! The paper's product is an *alert program* — §1: "the earlier a
//! potential customer can be approached …, the higher are the chances
//! of converting that prospect". This example runs a compressed week
//! of operation through the actual continuous-ingest subsystem
//! (`etap_serve::watch`, DESIGN.md §10): generation 1 is sealed in a
//! crash-safe store and served over HTTP, then each "day" a supervised
//! cycle polls fresh documents, delta-scans them, adapts the class
//! priors toward the day's trigger rate, and seals + hot-swaps the
//! next generation. Midway, deterministic fault injection turns the
//! infrastructure hostile — failed writes, delayed polls, one panic —
//! and the supervisor retries through all of it.
//!
//! ```sh
//! cargo run --release --example daily_monitor
//! ```

use etap_repro::runtime::fault::{self, FaultPlan};
use etap_repro::serve::{watch, GenerationStore, LeadSnapshot, ServeConfig, WatchConfig};
use etap_repro::system::rank;
use etap_repro::{Etap, EtapConfig, SyntheticWeb, WebConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Train once, offline.
    println!("[setup] training on the archive web…");
    let archive = SyntheticWeb::generate(WebConfig::with_docs(2_000));
    let mut config = EtapConfig::paper();
    config.training.negative_snippets = 3_000;
    let trained = Arc::new(Etap::new(config).train(&archive));

    // Seal generation 1 before serving a single byte: the daemon's
    // crash-safety invariant is that the served generation never runs
    // ahead of the last sealed one.
    let root = std::env::temp_dir().join(format!("etap_daily_monitor_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = GenerationStore::open(&root)
        .expect("open store")
        .with_retention(4);
    let poll_seed = 0xDA11;
    let day_one = SyntheticWeb::generate(WebConfig {
        seed: watch::poll_batch_seed(poll_seed, 1),
        ..WebConfig::with_docs(300)
    });
    let gen1 = Arc::new(LeadSnapshot::build(Arc::clone(&trained), day_one.docs(), 1));
    store.publish(&gen1).expect("seal generation 1");

    let server = etap_repro::serve::start(
        &ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        Arc::clone(&gen1),
    )
    .expect("start server");
    println!(
        "[day 1] serving generation 1 at http://{} ({} events, {} companies)",
        server.addr(),
        gen1.book.len(),
        gen1.book.companies_len()
    );

    let week = WatchConfig {
        interval: Duration::ZERO, // a compressed week: no sleep between days
        cycles: Some(2),
        poll_docs: 150,
        poll_seed,
        stage_timeout: Duration::from_secs(60),
        ..WatchConfig::default()
    };

    // Days 2–3: calm weather.
    let calm = watch::run(&server, &store, &week);
    assert_eq!(calm.cycles_failed, 0, "{:?}", calm.last_error);
    digest(&server, "calm days done");

    // Days 4–5: hostile weather — 10% of file writes fail, a fifth of
    // the polls lag, and the retrain stage panics exactly once. Same
    // spec + seed would replay the identical trace at any thread count.
    println!(
        "\n[chaos] arming deterministic faults: \
         persist.write=io@0.1, corpus.poll=delay:5ms@0.2, retrain=panic@once"
    );
    fault::install(
        &FaultPlan::parse(
            "persist.write=io@0.1,corpus.poll=delay:5ms@0.2,retrain=panic@once",
            0xBAD_DA,
        )
        .expect("valid plan"),
    );
    let stormy = watch::run(&server, &store, &week);
    let injected = fault::injected_total();
    fault::reset();
    digest(&server, "stormy days done");
    println!(
        "[chaos] {injected} fault(s) injected, {} stage retr{} absorbed, degraded: {}",
        stormy.retries,
        if stormy.retries == 1 { "y" } else { "ies" },
        stormy.degraded
    );

    let sealed = store.generations().expect("list");
    println!(
        "\n[week summary] generations sealed on disk: {sealed:?} (retention 4); \
         served generation {} == newest sealed {}",
        server.snapshot().generation,
        sealed.last().expect("sealed generations")
    );
    assert_eq!(
        server.snapshot().generation,
        *sealed.last().expect("sealed"),
        "the served generation must be the newest sealed one"
    );
    assert!(
        server.snapshot().generation >= 3,
        "calm days alone must have advanced the generation"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Print the day's top alerts from the *served* snapshot — what a
/// sales team polling `/leads` would see right now.
fn digest(server: &etap_repro::serve::ServerHandle, label: &str) {
    let snapshot = server.snapshot();
    println!(
        "\n=== {label}: serving generation {} ({} events) ===",
        snapshot.generation,
        snapshot.book.len()
    );
    let ranked = rank::rank_by_score(snapshot.book.events_owned());
    for e in ranked.iter().take(3) {
        println!("  [{:.3}] ({}) {}", e.score, e.driver, clip(&e.snippet, 92));
    }
}

fn clip(s: &str, n: usize) -> String {
    let mut t: String = s.chars().take(n).collect();
    if t.chars().count() < s.chars().count() {
        t.push('…');
    }
    t
}
