//! Continuous monitoring: the deployed-ETAP loop.
//!
//! The paper's product is an *alert program* — §1: "the earlier a
//! potential customer can be approached …, the higher are the chances
//! of converting that prospect". This example simulates a week of
//! operation: each "day" a focused crawl fetches fresh pages, the
//! trained classifiers flag trigger events in parallel, events already
//! alerted on are deduplicated, rankings are time-weighted, and the day
//! ends with a short alert digest.
//!
//! ```sh
//! cargo run --release --example daily_monitor
//! ```

use etap_repro::annotate::Annotator;
use etap_repro::corpus::{business_anchor, business_relevance, FocusedCrawler, LinkGraph};
use etap_repro::system::{rank, AliasResolver, EventDeduper, EventIdentifier};
use etap_repro::{Etap, EtapConfig, SyntheticWeb, WebConfig};

fn main() {
    // Train once, offline.
    println!("[setup] training on the archive web…");
    let archive = SyntheticWeb::generate(WebConfig::with_docs(2_000));
    let mut config = EtapConfig::paper();
    config.training.negative_snippets = 3_000;
    let trained = Etap::new(config).train(&archive);
    let identifier = EventIdentifier::new(3);
    let _ = Annotator::new(); // warm the gazetteers (cheap, illustrative)

    // Near-duplicate suppression across the whole week: syndicated
    // copies of a press release must alert once, not once per portal.
    let mut deduper = EventDeduper::new(0.6);
    let mut resolver = AliasResolver::new();
    let mut total_alerts = 0usize;
    let mut suppressed = 0usize;

    for day in 1..=5u64 {
        // Each day the web looks different (new seed = new news cycle);
        // 20% of pages are syndicated copies from the wire.
        let today = SyntheticWeb::generate(WebConfig {
            seed: 0xDA11 + day,
            syndication_fraction: 0.2,
            ..WebConfig::with_docs(500)
        });
        // Focused crawl: fetch the business slice of today's web.
        let graph = LinkGraph::build(&today, day, 2);
        let crawler = FocusedCrawler::new(&today, &graph);
        let seeds: Vec<usize> = today
            .docs()
            .iter()
            .filter(|d| business_relevance(d) >= 0.5)
            .take(3)
            .map(|d| d.id)
            .collect();
        let crawl = crawler.focused(&seeds, 200, business_relevance, business_anchor);
        let fetched: Vec<_> = crawl
            .fetched
            .iter()
            .map(|&id| today.doc(id).clone())
            .collect();

        // Identify (parallel across 4 workers) and near-dedup: rank
        // first so the kept representative is the best-scoring copy.
        let events = identifier.identify_parallel(&trained.drivers, &fetched, 4);
        let found = events.len();
        let fresh = deduper.dedup_events(rank::rank_by_score(events));
        suppressed += found - fresh.len();

        // Time-weighted ranking for the digest.
        let ranked = rank::rank_by_time_weighted_score(fresh.clone(), 365.0);
        total_alerts += ranked.len();
        println!(
            "\n=== day {day}: crawled {} pages, {} new trigger events ===",
            crawl.fetched.len(),
            ranked.len()
        );
        for (e, w) in ranked.iter().take(3) {
            println!("  [{w:.3}] ({}) {}", e.driver, clip(&e.snippet, 92));
        }
        let companies = rank::rank_companies_resolved(&fresh, &mut resolver);
        if let Some(top) = companies.first() {
            println!(
                "  hottest prospect today: {} (MRR {:.3})",
                top.company, top.mrr
            );
        }
    }
    println!(
        "\n[week summary] {total_alerts} alerts, {} duplicate/syndicated events suppressed, \
         {} clusters tracked.",
        suppressed,
        deduper.clusters()
    );
    assert!(total_alerts > 0, "a week of news must produce alerts");
    assert!(suppressed > 0, "syndicated copies must be suppressed");
}

fn clip(s: &str, n: usize) -> String {
    let mut t: String = s.chars().take(n).collect();
    if t.chars().count() < s.chars().count() {
        t.push('…');
    }
    t
}
