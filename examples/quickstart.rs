//! Quickstart: train ETAP on a synthetic web and print ranked sales
//! leads, end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use etap_repro::system::rank;
use etap_repro::{Etap, EtapConfig, SyntheticWeb, WebConfig};

fn main() {
    // 1. The "web": a deterministic synthetic corpus of business news,
    //    biographies, and a dozen background genres (see DESIGN.md for
    //    why this substitutes for a live crawl).
    println!("Generating synthetic web…");
    let web = SyntheticWeb::generate(WebConfig::with_docs(2_000));

    // 2. Train classifiers for the paper's three sales drivers. The
    //    pipeline issues smart queries against a built-in search engine,
    //    distills noisy positives through NE filters, and runs the
    //    Brodley-style de-noising loop (2 iterations, ×3 oversampling of
    //    pure positives) — all defaults straight from the paper.
    println!("Training classifiers for all three sales drivers…");
    let system = Etap::new(EtapConfig::paper());
    let trained = system.train(&web);
    for d in &trained.drivers {
        println!(
            "  {:<24} noisy positives: {} → retained: {} ({} iterations)",
            d.spec.driver.to_string(),
            d.report.noisy_positives,
            d.report.retained_positives,
            d.report.iterations
        );
    }

    // 3. Point the trained system at fresh documents (a new crawl).
    let fresh = SyntheticWeb::generate(WebConfig {
        seed: 2_024,
        ..WebConfig::with_docs(300)
    });
    let events = trained.identify_events(fresh.docs());
    println!(
        "\nFlagged {} trigger events in {} fresh documents.",
        events.len(),
        fresh.len()
    );

    // 4. Rank by classifier confidence (paper Figure 7's view).
    let ranked = rank::rank_by_score(events.clone());
    println!("\nTop trigger events by classifier score:");
    for (i, e) in ranked.iter().take(8).enumerate() {
        println!(
            "  {:>2}. [{:.3}] ({}) {}",
            i + 1,
            e.score,
            e.driver,
            truncate(&e.snippet, 90)
        );
    }

    // 5. Aggregate per company with the paper's MRR(c) (Eq. 2).
    let companies = rank::rank_companies(&events);
    println!("\nTop prospective buyers (company MRR):");
    for (i, c) in companies.iter().take(8).enumerate() {
        println!(
            "  {:>2}. {:<28} MRR={:.3} ({} events)",
            i + 1,
            c.company,
            c.mrr,
            c.events
        );
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        let cut = s
            .char_indices()
            .take_while(|(i, _)| *i < n)
            .last()
            .map_or(0, |(i, c)| i + c.len_utf8());
        format!("{}…", &s[..cut])
    }
}
