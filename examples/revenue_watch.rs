//! Revenue watch: semantic-orientation ranking (paper §4, Figure 8).
//!
//! For the revenue-growth driver the paper ranks trigger events not by
//! classifier score but by a *business-value* lexicon: "phrases that
//! convey a stronger sense, e.g., 'sharp decline', 'worst losses' are
//! weighted more than other phrases". This example contrasts the two
//! rankings side by side.
//!
//! ```sh
//! cargo run --release --example revenue_watch
//! ```

use etap_repro::system::rank;
use etap_repro::{
    DriverSpec, Etap, EtapConfig, OrientationLexicon, SalesDriver, SyntheticWeb, WebConfig,
};

fn main() {
    let web = SyntheticWeb::generate(WebConfig::with_docs(2_000));

    let mut config = EtapConfig::paper();
    config.drivers = vec![DriverSpec::builtin(SalesDriver::RevenueGrowth)];
    let trained = Etap::new(config).train(&web);

    let news = SyntheticWeb::generate(WebConfig {
        seed: 4242,
        ..WebConfig::with_docs(400)
    });
    let events = trained.identify_events(news.docs());
    println!("{} revenue-growth trigger events identified.", events.len());

    // Ranking 1: classifier confidence (how sure are we it IS a revenue
    // event).
    let by_score = rank::rank_by_score(events.clone());
    println!("\n=== By classifier score ===");
    for (i, e) in by_score.iter().take(6).enumerate() {
        println!("{:>2}. [{:.3}] {}", i + 1, e.score, short(&e.snippet));
    }

    // Ranking 2: semantic orientation (how GOOD is the news — the
    // business-value view a sales rep wants).
    let lexicon = OrientationLexicon::revenue_growth();
    let by_orientation = rank::rank_by_orientation(events, &lexicon);
    println!("\n=== By semantic orientation (business value) ===");
    for (i, (e, s)) in by_orientation.iter().take(6).enumerate() {
        println!("{:>2}. [orient {s:+.1}] {}", i + 1, short(&e.snippet));
    }
    println!("\n=== Weakest orientation (declines & warnings sink) ===");
    for (e, s) in by_orientation.iter().rev().take(3) {
        println!("    [orient {s:+.1}] {}", short(&e.snippet));
    }

    // Extending the lexicon at runtime, as §4 suggests for new drivers.
    let mut custom = OrientationLexicon::revenue_growth();
    custom.insert("raised its full-year outlook", 3.0);
    custom.insert("profit warning", -3.0);
    println!(
        "\nCustom lexicon has {} phrases (builtin {}).",
        custom.len(),
        lexicon.len()
    );
}

fn short(s: &str) -> String {
    let mut t: String = s.chars().take(100).collect();
    if t.len() < s.len() {
        t.push('…');
    }
    t
}
