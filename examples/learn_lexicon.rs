//! Automatic lexicon learning (SO-PMI / Turney, cited by the paper §4).
//!
//! "Currently this lexicon is constructed manually for each sales
//! driver. Automated methods of generating lexicons using positive and
//! negative seed terms … could also be used." This example learns a
//! revenue-growth orientation lexicon from the synthetic web using six
//! positive and six negative seed words, then compares its rankings to
//! the hand-built lexicon.
//!
//! ```sh
//! cargo run --release --example learn_lexicon
//! ```

use etap_repro::annotate::Annotator;
use etap_repro::corpus::SearchEngine;
use etap_repro::system::training::{harvest_noisy_positives, TrainingConfig};
use etap_repro::system::LexiconLearner;
use etap_repro::{DriverSpec, OrientationLexicon, SalesDriver, SyntheticWeb, WebConfig};

fn main() {
    // Learn from *revenue-relevant* snippets — the smart-query harvest
    // for the revenue driver. Learning from the whole web instead would
    // let unrelated topics leak in (the word "fall" rides with "record"
    // in entertainment pages: "record crowds", "premiering this fall").
    let web = SyntheticWeb::generate(WebConfig::with_docs(10_000));
    let engine = SearchEngine::build(web.docs());
    let annotator = Annotator::new();
    let spec = DriverSpec::builtin(SalesDriver::RevenueGrowth);
    let harvest =
        harvest_noisy_positives(&spec, &engine, &web, &annotator, &TrainingConfig::default());
    let snippets = harvest.noisy_texts;
    println!("learning from {} revenue-harvest snippets…", snippets.len());

    let learner = LexiconLearner::revenue_seeds();
    let learned = learner.learn(&snippets);
    println!("learned lexicon: {} phrases\n", learned.len());

    // Probe words the seeds never mention directly.
    let probes = [
        "revenue surged past expectations",
        "sales climbed on strong demand",
        "shares jumped after earnings",
        "margins widened this quarter",
        "revenue may fall next quarter",
        "the stock tumbled on a warning",
        "a painful slump in demand",
    ];
    let manual = OrientationLexicon::revenue_growth();
    println!("{:<40} {:>9} {:>9}", "probe snippet", "learned", "manual");
    for p in probes {
        println!(
            "{:<40} {:>+9.2} {:>+9.2}",
            p,
            learned.score(p),
            manual.score(p)
        );
    }

    // Sanity: learned signs should agree with the manual lexicon on
    // clear-cut cases.
    assert!(learned.score("revenue surged past expectations") > 0.0);
    assert!(learned.score("demand slumped and earnings dropped") < 0.0);
    println!(
        "\nLearned lexicon agrees with the hand-built one on sign for the clear cases."
    );
    println!(
        "Known SO-PMI limitation, visible above: words from mixed-sentiment windows \
         (\"revenue may fall…\" sentences share 3-sentence snippets with upbeat ones) \
         inherit the window's majority polarity — Turney's NEAR operator has the same \
         topic-drift failure mode. Production use keeps the human-curated lexicon as \
         the backbone and treats learned entries as candidate suggestions."
    );
}
