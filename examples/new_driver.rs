//! Defining a brand-new sales driver from scratch.
//!
//! §3.3.1: "one may want to introduce new categories of sales drivers
//! quite frequently and hand-labeling to produce training data for new
//! categories can be very tedious" — so ETAP builds the training set
//! automatically from smart queries + snippet filters. This example
//! adds a **product launch** driver (a company shipping a new product
//! suggests demand for marketing/support services) without touching any
//! built-in code:
//!
//! 1. write smart queries,
//! 2. write an NE-combination snippet filter,
//! 3. hand the spec to the standard pipeline.
//!
//! ```sh
//! cargo run --release --example new_driver
//! ```

use etap_repro::annotate::{Annotator, EntityCategory};
use etap_repro::corpus::{SearchEngine, SyntheticWeb, WebConfig};
use etap_repro::system::training::{self, TrainingConfig};
use etap_repro::system::Filter;
use etap_repro::{DriverSpec, SalesDriver};

fn main() {
    let web = SyntheticWeb::generate(WebConfig::with_docs(2_000));
    let engine = SearchEngine::build(web.docs());
    let annotator = Annotator::new();

    // A new driver is just a spec. We reuse the RevenueGrowth tag here
    // because SalesDriver is a closed enum in the corpus ground truth;
    // a real deployment would carry its own driver registry — the
    // pipeline only cares about the queries and the filter.
    let spec = DriverSpec {
        driver: SalesDriver::RevenueGrowth,
        smart_queries: vec![
            "\"record revenue\"".to_string(),
            "\"revenue surged\"".to_string(),
            "\"raised its full-year outlook\"".to_string(),
            "\"swung to a profit\"".to_string(),
            "\"net income\" jumped".to_string(),
        ],
        // Organization AND (Currency OR Percent) — but also insist the
        // snippet is not purely historical by excluding YEAR-only money
        // mentions. Filters compose with and/or/negate.
        snippet_filter: Filter::cat(EntityCategory::Org)
            .and(Filter::cat(EntityCategory::Currency).or(Filter::cat(EntityCategory::Prcnt))),
        orientation: None,
    };

    let config = TrainingConfig {
        pure_positives: 0, // no hand-labeled data at all for a new driver
        ..TrainingConfig::default()
    };

    // Step 1+2: harvest noisy positives and inspect them, the way
    // Figures 5/6 of the paper inspect the "new ceo" query results.
    let harvest = training::harvest_noisy_positives(&spec, &engine, &web, &annotator, &config);
    println!(
        "Smart queries fetched {} documents; {} of {} snippets passed the filter.",
        harvest.docs_fetched,
        harvest.noisy.len(),
        harvest.snippets_considered
    );
    println!("\nSample noisy positives:");
    for text in harvest.noisy_texts.iter().take(4) {
        println!("  • {}", &text.chars().take(110).collect::<String>());
    }

    // Step 3: train with zero pure positives (the paper's cold-start
    // case) — the de-noising loop works purely from Pⁿ vs N.
    let trained = training::train_driver(&spec, &engine, &web, &annotator, &config, |_| false);
    println!(
        "\nDe-noising kept {}/{} noisy positives in {} iterations.",
        trained.report.retained_positives,
        trained.report.noisy_positives,
        trained.report.iterations
    );

    // Sanity-check the new classifier.
    let cases = [
        (
            "Zenlith Systems Inc. posted record revenue of $420 million for fiscal 2005.",
            true,
        ),
        (
            "The committee debated the new transport bill in Geneva.",
            false,
        ),
        (
            "Simmer the sauce for twenty minutes, stirring occasionally.",
            false,
        ),
    ];
    println!("\nClassifier spot checks:");
    for (text, expect) in cases {
        let score = trained.score(&annotator.annotate(text));
        let verdict = if score >= 0.5 { "TRIGGER" } else { "ignore " };
        println!("  [{verdict} {score:.3}] {text}");
        assert_eq!(score >= 0.5, expect, "{text}");
    }
    println!("\nNew driver trained without a single hand-labeled snippet.");
}
