#!/usr/bin/env bash
# Tier-1 verification + pipeline throughput gate.
#
# 1. `cargo build --release && cargo test -q` (the repo's tier-1 bar);
# 2. the throughput benchmark (writes BENCH_pipeline.json);
# 3. fails if the N-thread pipeline is *slower* than the 1-thread run.
#
# On a single-core host the parallel path cannot be faster — the gate
# then only requires that the fan-out overhead stays small (speedup
# >= 0.85 instead of >= 1.0). ETAP_THREADS / ETAP_DOCS are honored.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo
echo "== throughput: bench_throughput (writes BENCH_pipeline.json) =="
cargo run -q --release -p etap-bench --bin bench_throughput

speedup=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -gt 1 ]; then
    floor="1.0"
else
    floor="0.85"
    echo "note: single-core host ($cores CPU) — parallel speedup is bounded at ~1.0x;"
    echo "      gating only on fan-out overhead (speedup >= $floor)."
fi

ok=$(awk -v s="$speedup" -v f="$floor" 'BEGIN { print (s >= f) ? 1 : 0 }')
if [ "$ok" -ne 1 ]; then
    echo "FAIL: N-thread pipeline slower than 1-thread (speedup ${speedup}x < ${floor})" >&2
    exit 1
fi
echo
echo "OK: verify passed (speedup ${speedup}x on ${cores} core(s))"
