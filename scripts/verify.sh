#!/usr/bin/env bash
# Tier-1 verification + pipeline throughput gate + serve smoke test.
#
# 1. `cargo build --release && cargo test -q` (the repo's tier-1 bar);
# 2. the throughput benchmark (writes BENCH_pipeline.json with 1/2/4-
#    thread docs/sec and a per-stage ms breakdown);
# 3. perf gate: fails if (a) the 2-/4-thread speedups fall below
#    hardware-scaled floors (1.5x / 2.5x on a >=4-core host; overhead
#    bound 0.85x on a single core, where real speedup is impossible),
#    or (b) single-thread docs/sec regresses >10% below the committed
#    BENCH_pipeline.json baseline — printed as a diff-style report —
#    or (c) scan.annotate ms/doc (the dominant stage, pinned by the
#    zero-allocation annotation engine) regresses below the same
#    ETAP_PERF_FLOOR ratio against the committed baseline;
# 4. boots `etap-cli serve` on an ephemeral port, curls /healthz and
#    /leads, then load-tests with bench_serve (writes BENCH_serve.json)
#    and fails if any request was shed at nominal load;
# 5. persistence crash-recovery: publishes two generations into a
#    store, serves them warm, kill -9s the server, restarts it from
#    disk, and fails unless /leads is byte-identical across the crash
#    and the generation counter continues monotonically; also runs
#    bench_persist (writes BENCH_persist.json);
# 6. chaos: runs the `watch` daemon under deterministic fault injection
#    (ETAP_FAULTS: injected write errors, delayed polls, one panic),
#    kill -9s it mid-cycle, and fails unless a warm restart serves the
#    last sealed generation byte-for-byte and a fault-free watch run
#    then converges back to healthy with the generation counter still
#    monotone; also runs bench_watch (writes BENCH_watch.json).
#
# On a single-core host the parallel path cannot be faster — the gate
# then only requires that the fan-out overhead stays small (speedup
# >= 0.85 instead of >= 1.0). ETAP_THREADS / ETAP_DOCS are honored.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo
echo "== throughput: bench_throughput (writes BENCH_pipeline.json) =="
# Capture the committed baseline before the bench overwrites it.
perf_baseline=""
if [ -f BENCH_pipeline.json ]; then
    perf_baseline=$(mktemp)
    cp BENCH_pipeline.json "$perf_baseline"
fi
cargo run -q --release -p etap-bench --bin bench_throughput

# jnum <file> <key>: pull a flat numeric JSON field.
jnum() { sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p" "$1"; }

cores=$(jnum BENCH_pipeline.json cores)
d1=$(jnum BENCH_pipeline.json docs_per_sec_1t)
s2=$(jnum BENCH_pipeline.json speedup_2t)
s4=$(jnum BENCH_pipeline.json speedup_4t)

# Hardware-scaled speedup floors. The fan-out is capped at the host's
# parallelism (oversubscription only adds context switches), so a
# 1-core host can never beat ~1.0x — there the gate only bounds the
# fan-out overhead, and a 2–3-core host can't be held to the 4-thread
# target.
if [ "$cores" -ge 4 ]; then
    floor2=1.5 floor4=2.5
elif [ "$cores" -ge 2 ]; then
    floor2=1.5 floor4=1.5
else
    floor2=0.85 floor4=0.85
    echo "note: single-core host — parallel speedup is bounded at ~1.0x;"
    echo "      gating only on fan-out overhead (speedup >= $floor2)."
fi

perf_fail=0
gate() { # gate <label> <value> <floor>
    if [ "$(awk -v v="$2" -v f="$3" 'BEGIN { print (v >= f) ? 1 : 0 }')" -ne 1 ]; then
        echo "FAIL: $1 = $2 (floor $3)" >&2
        perf_fail=1
    else
        echo "  ok: $1 = $2 (floor $3)"
    fi
}
gate "speedup_2t" "$s2" "$floor2"
gate "speedup_4t" "$s4" "$floor4"

# Regression gate vs the committed baseline: single-thread docs/sec is
# measurable on any host (unlike speedup), so it must not drop more
# than 10% below what was last committed. Printed as a diff-style
# report, per-stage times included. The bench takes best-of-3 to damp
# shared-host noise; ETAP_PERF_FLOOR overrides the 0.9 ratio on hosts
# whose clock-for-clock throughput genuinely drifts (noisy neighbors).
perf_floor="${ETAP_PERF_FLOOR:-0.9}"
if [ -n "$perf_baseline" ]; then
    base_d1=$(jnum "$perf_baseline" docs_per_sec_1t)
    if [ -n "$base_d1" ]; then
        echo "  perf diff vs committed BENCH_pipeline.json:"
        awk -v b="$base_d1" -v c="$d1" 'BEGIN {
            printf "    %-22s %10.1f  -> %10.1f    (%+.1f%%)\n",
                   "docs_per_sec_1t", b, c, (c / b - 1) * 100 }'
        # Stage names are the dotted keys of the "stages" object.
        for st in $(grep -o '"[a-z]*\.[a-z]*": [0-9.]*' BENCH_pipeline.json \
                    | sed 's/"\([^"]*\)": .*/\1/'); do
            bv=$(jnum "$perf_baseline" "$st")
            cv=$(jnum BENCH_pipeline.json "$st")
            if [ -n "$bv" ] && [ -n "$cv" ]; then
                awk -v n="$st" -v b="$bv" -v c="$cv" 'BEGIN {
                    printf "    %-22s %8.1f ms -> %8.1f ms (%+.1f%%)\n",
                           n, b, c, (b > 0 ? (c / b - 1) * 100 : 0) }'
            fi
        done
        gate "docs_per_sec_1t vs ${perf_floor}x baseline ($base_d1)" "$d1" \
            "$(awk -v b="$base_d1" -v f="$perf_floor" 'BEGIN { print b * f }')"
        # Per-stage floor on the dominant scan stage: annotate ms/doc
        # must stay within perf_floor of the committed baseline. This
        # pins the zero-allocation annotation engine specifically — a
        # regression here can hide inside a globally-noisy docs/sec
        # number, so the stage is gated on its own. Normalized per doc
        # so a different ETAP_DOCS run stays comparable; expressed as a
        # speed ratio (baseline ms-per-doc over current) so the shared
        # `gate >= floor` check applies.
        base_docs=$(jnum "$perf_baseline" docs)
        new_docs=$(jnum BENCH_pipeline.json docs)
        base_ann=$(jnum "$perf_baseline" "scan.annotate")
        new_ann=$(jnum BENCH_pipeline.json "scan.annotate")
        if [ -n "$base_ann" ] && [ -n "$new_ann" ] \
            && [ -n "$base_docs" ] && [ -n "$new_docs" ]; then
            ann_ratio=$(awk -v bm="$base_ann" -v bd="$base_docs" \
                            -v nm="$new_ann" -v nd="$new_docs" \
                'BEGIN { printf "%.3f", (bm / bd) / (nm / nd) }')
            gate "scan.annotate speed vs baseline (${base_ann}ms -> ${new_ann}ms)" \
                "$ann_ratio" "$perf_floor"
        else
            echo "  note: baseline lacks scan.annotate; stage gate skipped."
        fi
    else
        echo "  note: committed baseline predates the 1t/2t/4t schema; regression gate skipped."
    fi
    rm -f "$perf_baseline"
fi
if [ "$perf_fail" -ne 0 ]; then
    echo "FAIL: pipeline perf gate (see above)" >&2
    exit 1
fi

echo
echo "== serve smoke: etap-cli serve + curl + bench_serve =="
smoke_models=$(mktemp -d)
smoke_log=$(mktemp)
store_dir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$smoke_models" "$smoke_log" "$store_dir"
}
trap cleanup EXIT

# Small but real: train one driver, then serve a fresh crawl from it.
cargo run -q --release --bin etap-cli -- \
    train --out "$smoke_models" --docs 600 --driver cim >/dev/null
cargo run -q --release --bin etap-cli -- \
    serve --models "$smoke_models" --addr 127.0.0.1:0 --docs 120 \
    >"$smoke_log" 2>/dev/null &
server_pid=$!

base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's/^listening on \(http:\/\/[0-9.:]*\)$/\1/p' "$smoke_log")
    [ -n "$base" ] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "FAIL: serve exited early" >&2; exit 1; }
    sleep 0.2
done
[ -n "$base" ] || { echo "FAIL: serve never printed its address" >&2; exit 1; }
echo "serving at $base"

curl -fsS "$base/healthz" | grep -q '"ok": *true' \
    || { echo "FAIL: /healthz not ok" >&2; exit 1; }
curl -fsS "$base/leads?top=3" | grep -q '"leads"' \
    || { echo "FAIL: /leads gave no lead list" >&2; exit 1; }
echo "smoke: /healthz and /leads respond"
kill "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

cargo run -q --release -p etap-bench --bin bench_serve

shed_rate=$(sed -n 's/.*"shed_rate": \([0-9.]*\).*/\1/p' BENCH_serve.json)
shed_ok=$(awk -v s="$shed_rate" 'BEGIN { print (s == 0) ? 1 : 0 }')
if [ "$shed_ok" -ne 1 ]; then
    echo "FAIL: server shed requests at nominal load (shed_rate ${shed_rate})" >&2
    exit 1
fi

echo
echo "== persistence: publish ×2, kill -9, warm restart, byte parity =="
cargo run -q --release --bin etap-cli -- \
    publish --store "$store_dir" --models "$smoke_models" --docs 120 >/dev/null
cargo run -q --release --bin etap-cli -- \
    publish --store "$store_dir" --extend --docs 60 --seed 11 >/dev/null
echo "published generations: $(ls "$store_dir" | tr '\n' ' ')"

# boot_store <logfile>: warm-start a server from the store; sets the
# globals $server_pid and $base (no subshell — both must survive).
boot_store() {
    : >"$1"
    cargo run -q --release --bin etap-cli -- \
        serve --store "$store_dir" --addr 127.0.0.1:0 >"$1" 2>/dev/null &
    server_pid=$!
    base=""
    for _ in $(seq 1 50); do
        base=$(sed -n 's/^listening on \(http:\/\/[0-9.:]*\)$/\1/p' "$1")
        [ -n "$base" ] && break
        kill -0 "$server_pid" 2>/dev/null \
            || { echo "FAIL: warm serve exited early" >&2; exit 1; }
        sleep 0.2
    done
    [ -n "$base" ] || { echo "FAIL: warm serve never printed its address" >&2; exit 1; }
}

boot_store "$smoke_log"
leads_before=$(curl -fsS "$base/leads?top=100")
gen_before=$(curl -fsS "$base/healthz" | sed -n 's/.*"generation": \([0-9]*\).*/\1/p')
[ "$gen_before" = "2" ] \
    || { echo "FAIL: warm start served generation ${gen_before}, expected 2" >&2; exit 1; }

kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

boot_store "$smoke_log"
leads_after=$(curl -fsS "$base/leads?top=100")
if [ "$leads_before" != "$leads_after" ]; then
    echo "FAIL: /leads differs across kill -9 + warm restart" >&2
    exit 1
fi
echo "crash recovery: /leads byte-identical across kill -9 (generation ${gen_before})"
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

# The generation counter continues past the crash: the next publish is 3.
cargo run -q --release --bin etap-cli -- \
    publish --store "$store_dir" --extend --docs 40 --seed 13 \
    | grep -q "published generation 3" \
    || { echo "FAIL: generation counter did not continue monotonically" >&2; exit 1; }
echo "generation counter monotonic across restart (next publish was 3)"

cargo run -q --release -p etap-bench --bin bench_persist

echo
echo "== chaos: watch under ETAP_FAULTS, kill -9 mid-cycle, reconverge =="
chaos_store=$(mktemp -d)
chaos_cleanup() {
    rm -rf "$chaos_store"
}
trap 'cleanup; chaos_cleanup' EXIT

# A long-running watch under injected faults: some writes fail (and are
# retried), polls are delayed, the retrain stage panics exactly once.
: >"$smoke_log"
ETAP_FAULTS='persist.write=io@0.05,corpus.poll=delay:20ms@0.2,retrain=panic@once' \
ETAP_FAULT_SEED=11 \
cargo run -q --release --bin etap-cli -- \
    watch --store "$chaos_store" --models "$smoke_models" \
    --addr 127.0.0.1:0 --docs 60 --interval-ms 100 \
    >"$smoke_log" 2>/dev/null &
server_pid=$!
base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's/^listening on \(http:\/\/[0-9.:]*\)$/\1/p' "$smoke_log")
    [ -n "$base" ] && break
    kill -0 "$server_pid" 2>/dev/null \
        || { echo "FAIL: chaos watch exited early" >&2; exit 1; }
    sleep 0.2
done
[ -n "$base" ] || { echo "FAIL: chaos watch never printed its address" >&2; exit 1; }

# Let it cycle through the injected faults until generation >= 3.
chaos_gen=0
for _ in $(seq 1 100); do
    chaos_gen=$(curl -fsS "$base/healthz" 2>/dev/null \
        | sed -n 's/.*"generation": \([0-9]*\).*/\1/p' || echo 0)
    [ -n "$chaos_gen" ] && [ "$chaos_gen" -ge 3 ] && break
    sleep 0.2
done
[ "$chaos_gen" -ge 3 ] \
    || { echo "FAIL: chaos watch stuck at generation ${chaos_gen}" >&2; exit 1; }
echo "chaos watch reached generation ${chaos_gen} under injected faults"

# kill -9 mid-cycle: whatever was in flight must not be served later.
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

# Two fault-free warm restarts must agree byte-for-byte: the daemon
# only ever serves sealed generations, so the kill lost at most an
# unsealed in-flight cycle.
old_store_dir=$store_dir
store_dir=$chaos_store
boot_store "$smoke_log"
chaos_leads_a=$(curl -fsS "$base/leads?top=100")
chaos_gen_a=$(curl -fsS "$base/healthz" | sed -n 's/.*"generation": \([0-9]*\).*/\1/p')
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
boot_store "$smoke_log"
chaos_leads_b=$(curl -fsS "$base/leads?top=100")
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
store_dir=$old_store_dir
[ "$chaos_leads_a" = "$chaos_leads_b" ] \
    || { echo "FAIL: /leads differs across kill -9 of the watch daemon" >&2; exit 1; }
echo "chaos recovery: /leads byte-identical across kill -9 (generation ${chaos_gen_a})"

# Fault-free convergence: a bounded watch run ends healthy and the
# generation counter keeps increasing past everything sealed so far.
chaos_out=$(cargo run -q --release --bin etap-cli -- \
    watch --store "$chaos_store" --docs 60 --cycles 2 --interval-ms 0 \
    --addr 127.0.0.1:0 2>&1 >/dev/null) \
    || { echo "FAIL: fault-free watch run exited non-zero" >&2; exit 1; }
echo "$chaos_out" | grep -q "watch done: 2 cycle(s), 0 failed" \
    || { echo "FAIL: watch did not reconverge: $chaos_out" >&2; exit 1; }
chaos_final=$(echo "$chaos_out" | sed -n 's/.*final generation \([0-9]*\).*/\1/p')
[ "$chaos_final" -gt "$chaos_gen_a" ] \
    || { echo "FAIL: generation not monotone (${chaos_gen_a} -> ${chaos_final})" >&2; exit 1; }
echo "chaos convergence: healthy after faults, generation ${chaos_gen_a} -> ${chaos_final}"

cargo run -q --release -p etap-bench --bin bench_watch

echo
echo "== scale: streamed corpus, sharded LEADS v2, mmap warm start =="
scale_store=$(mktemp -d)
scale_cleanup() {
    rm -rf "$scale_store"
}
trap 'cleanup; chaos_cleanup; scale_cleanup' EXIT

# bench_scale streams the corpus (never materializing it), publishes the
# same book as LEADS v1 text and sharded LEADS v2 binary, republishes a
# small extension incrementally, and measures parse-vs-mmap warm starts.
# CI-bounded to 100k docs; override with ETAP_SCALE_DOCS for the full
# million-document run recorded in the committed BENCH_scale.json.
ETAP_SCALE_DOCS="${ETAP_SCALE_DOCS:-100000}" \
    cargo run -q --release -p etap-bench --bin bench_scale

scale_fail=0
sgate() { # sgate <label> <value> <floor>
    if [ "$(awk -v v="$2" -v f="$3" 'BEGIN { print (v >= f) ? 1 : 0 }')" -ne 1 ]; then
        echo "FAIL: $1 = $2 (floor $3)" >&2
        scale_fail=1
    else
        echo "  ok: $1 = $2 (floor $3)"
    fi
}
warm_speedup=$(jnum BENCH_scale.json warm_speedup)
v2_bytes=$(jnum BENCH_scale.json v2_bytes)
extend_bytes=$(jnum BENCH_scale.json extend_bytes)
n_shards=$(jnum BENCH_scale.json shards)
dirty_shards=$(jnum BENCH_scale.json extend_dirty_shards)
linked_files=$(jnum BENCH_scale.json extend_linked_files)

# The two acceptance gates: mmap warm start >= 10x the parsed one, and
# the dirty-shard incremental publish writing strictly fewer bytes (and
# rewriting strictly fewer shards) than the full rebuild it replaces.
sgate "warm_speedup (mmap vs parse)" "$warm_speedup" 10
if [ "$(awk -v e="$extend_bytes" -v f="$v2_bytes" 'BEGIN { print (e < f) ? 1 : 0 }')" -ne 1 ]; then
    echo "FAIL: incremental publish wrote ${extend_bytes} B >= full publish ${v2_bytes} B" >&2
    scale_fail=1
else
    echo "  ok: incremental publish ${extend_bytes} B < full publish ${v2_bytes} B"
fi
if [ "$dirty_shards" -ge "$n_shards" ] || [ "$linked_files" -lt 1 ]; then
    echo "FAIL: extend dirtied ${dirty_shards}/${n_shards} shards (${linked_files} linked)" >&2
    scale_fail=1
else
    echo "  ok: extend rewrote ${dirty_shards}/${n_shards} shards, hard-linked ${linked_files} clean"
fi
if [ "$scale_fail" -ne 0 ]; then
    echo "FAIL: scale gate (see above)" >&2
    exit 1
fi

# End to end across formats: the same crawl published as v1 text and
# re-published as sharded v2 must serve byte-identical /leads — across
# a kill -9 and an mmap-backed warm restart.
cargo run -q --release --bin etap-cli -- \
    publish --store "$scale_store" --models "$smoke_models" --docs 120 >/dev/null
cargo run -q --release --bin etap-cli -- \
    publish --store "$scale_store" --models "$smoke_models" --docs 120 \
    --format v2 --shards 8 >/dev/null

old_store_dir=$store_dir
store_dir=$scale_store
boot_store "$smoke_log"
scale_leads_v2=$(curl -fsS "$base/leads?top=100")
scale_gen=$(curl -fsS "$base/healthz" | sed -n 's/.*"generation": \([0-9]*\).*/\1/p')
scale_mmap=$(curl -fsS "$base/metrics" | sed -n 's/^etap_mmap_generations \([0-9]*\)$/\1/p')
[ "$scale_gen" = "2" ] \
    || { echo "FAIL: scale warm start served generation ${scale_gen}, expected 2" >&2; exit 1; }
[ "$scale_mmap" = "1" ] \
    || { echo "FAIL: v2 warm start is not serving from an mmap (etap_mmap_generations=${scale_mmap})" >&2; exit 1; }
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

boot_store "$smoke_log"
scale_leads_again=$(curl -fsS "$base/leads?top=100")
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
store_dir=$old_store_dir
[ "$scale_leads_v2" = "$scale_leads_again" ] \
    || { echo "FAIL: /leads differs across kill -9 + mmap warm restart" >&2; exit 1; }

# Byte parity v1 vs v2: gen 1 (text) and gen 2 (binary) hold the same
# crawl, so the CLI multiset diff must be empty.
cargo run -q --release --bin etap-cli -- \
    diff --store "$scale_store" --from 1 --to 2 \
    | grep -q "(+0 / -0)" \
    || { echo "FAIL: v1 and v2 generations of the same crawl disagree" >&2; exit 1; }
echo "scale: v1/v2 byte parity, mmap warm start survives kill -9 (generation ${scale_gen})"

echo
echo "== drivers as data: DRIVERS file -> train -> publish v2 -> crash + thread parity =="
drv_models=$(mktemp -d)
drv_store=$(mktemp -d)
drv_store4=$(mktemp -d)
drv_cleanup() {
    rm -rf "$drv_models" "$drv_store" "$drv_store4"
}
trap 'cleanup; chaos_cleanup; scale_cleanup; drv_cleanup' EXIT

# The committed driver pack must match what the emitter writes today
# (checksum trailer included) — the same invariant the integration
# tests pin, but here against the real binary.
cargo run -q --release --bin etap-cli -- example-drivers \
    | cmp -s - drivers/extra.drivers \
    || { echo "FAIL: drivers/extra.drivers drifted from 'etap-cli example-drivers'" >&2; exit 1; }

# Train the two shipped example drivers purely from the data file — no
# driver-specific Rust anywhere in this stage.
cargo run -q --release --bin etap-cli -- \
    train --out "$drv_models" --docs 900 --drivers drivers/extra.drivers \
    --driver funding-rounds,executive-hires >/dev/null
[ -f "$drv_models/funding-rounds.model" ] && [ -f "$drv_models/executive-hires.model" ] \
    || { echo "FAIL: train --drivers did not write the custom models" >&2; exit 1; }

# Publish as sharded LEADS v2 single-threaded (custom driver codes
# travel in the book's code table).
ETAP_THREADS=1 cargo run -q --release --bin etap-cli -- \
    publish --store "$drv_store" --models "$drv_models" --docs 150 \
    --drivers drivers/extra.drivers --format v2 --shards 4 >/dev/null

# Warm-start WITHOUT --drivers: the sealed v2 book is self-describing,
# so the server must resolve the custom keys from the code table alone.
old_store_dir=$store_dir
store_dir=$drv_store
boot_store "$smoke_log"
drv_leads=$(curl -fsS "$base/leads?driver=funding-rounds&top=50")
echo "$drv_leads" | grep -q '"driver":"funding-rounds"' \
    || { echo "FAIL: no funding-rounds leads served from the data-file driver" >&2; exit 1; }
unknown_code=$(curl -s -o /dev/null -w '%{http_code}' "$base/leads?driver=no-such-driver")
[ "$unknown_code" = "404" ] \
    || { echo "FAIL: unknown driver key gave ${unknown_code}, expected 404" >&2; exit 1; }

kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

boot_store "$smoke_log"
drv_leads_again=$(curl -fsS "$base/leads?driver=funding-rounds&top=50")
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
[ "$drv_leads" = "$drv_leads_again" ] \
    || { echo "FAIL: custom-driver /leads differs across kill -9 + warm restart" >&2; exit 1; }
echo "drivers: funding-rounds /leads byte-identical across kill -9"

# Thread parity: the same publish at ETAP_THREADS=4 must seal a book
# that serves bit-identical /leads for the custom driver.
ETAP_THREADS=4 cargo run -q --release --bin etap-cli -- \
    publish --store "$drv_store4" --models "$drv_models" --docs 150 \
    --drivers drivers/extra.drivers --format v2 --shards 4 >/dev/null
store_dir=$drv_store4
boot_store "$smoke_log"
drv_leads_4t=$(curl -fsS "$base/leads?driver=funding-rounds&top=50")
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""
store_dir=$old_store_dir
[ "$drv_leads" = "$drv_leads_4t" ] \
    || { echo "FAIL: custom-driver /leads differs between ETAP_THREADS=1 and =4" >&2; exit 1; }
echo "drivers: funding-rounds /leads bit-identical at 1 vs 4 threads"

echo
echo "OK: verify passed (1t ${d1} docs/s, speedup ${s2}x/${s4}x on ${cores} core(s), shed_rate ${shed_rate}, warm_speedup ${warm_speedup}x)"
