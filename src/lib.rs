//! # etap-repro — facade crate
//!
//! Single-dependency entry point for the ETAP reproduction (ICDE 2006,
//! *Automatic Sales Lead Generation from Web Data*). Re-exports every
//! workspace crate under one roof:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`system`] | `etap` | the ETAP pipeline: training, event identification, ranking |
//! | [`text`] | `etap-text` | tokenizer, sentence chunker, snippets, Porter stemmer |
//! | [`annotate`] | `etap-annotate` | POS tagger + 13-category NER |
//! | [`features`] | `etap-features` | feature abstraction, RIG, feature selection |
//! | [`classify`] | `etap-classify` | NB / LR / SVM / EM, de-noising, metrics |
//! | [`corpus`] | `etap-corpus` | synthetic web, search engine, sales drivers |
//! | [`runtime`] | `etap-runtime` | seeded PRNG + deterministic thread fan-out (`ETAP_THREADS`) |
//! | [`persist`] | `etap-persist` | versioned text codec: escaping, checksums, atomic writes |
//! | [`serve`] | `etap-serve` | HTTP lead serving: hot-swap snapshots, generation store, metrics |
//!
//! See the repository README for a walkthrough and `examples/` for
//! runnable scenarios.

#![forbid(unsafe_code)]

pub use etap as system;
pub use etap_annotate as annotate;
pub use etap_classify as classify;
pub use etap_corpus as corpus;
pub use etap_features as features;
pub use etap_persist as persist;
pub use etap_runtime as runtime;
pub use etap_serve as serve;
pub use etap_text as text;

// The most common types at the top level for convenience.
pub use etap::{
    DriverSet, DriverSpec, Etap, EtapConfig, OrientationLexicon, SalesDriver, TrainedEtap,
    TriggerEvent,
};
pub use etap_corpus::{SyntheticWeb, WebConfig};
