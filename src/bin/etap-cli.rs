//! `etap-cli` — drive the full ETAP pipeline from the command line.
//!
//! ```text
//! etap-cli train --out models/ [--docs 4000] [--seed 59305] [--driver all|ma|cim|rev]
//! etap-cli scan  --models models/ [--docs 300] [--seed 7] [--top 10] [--time-weighted]
//! etap-cli score --model models/<file>.model --text "IBM acquired Daksh..."
//! etap-cli companies --models models/ [--docs 300] [--seed 7] [--top 10]
//! etap-cli eval  --models models/ [--docs 600] [--seed 7]
//! etap-cli serve --models models/ [--store leads/] [--addr 127.0.0.1:8787]
//! etap-cli watch --store leads/ [--models models/] [--cycles N] [--interval-ms 1000]
//! etap-cli publish --models models/ --store leads/ [--docs 300] [--seed 7] [--extend]
//!                  [--format v1|v2] [--shards 16]
//! etap-cli generations --store leads/
//! etap-cli diff --store leads/ [--from N] [--to M]
//! ```
//!
//! `train` persists one `.model` file per sales driver (text format, see
//! `etap::persist`); `scan`/`companies` generate a fresh synthetic crawl
//! and run the trained models over it; `serve` freezes a crawl into a
//! lead snapshot and serves it over HTTP (see `etap-serve`).
//!
//! The persistence subcommands work a durable generation store (see
//! `etap_serve::GenerationStore`): `publish` writes a new generation
//! (full rebuild, or `--extend` to merge a document delta into the
//! newest stored generation), `generations` lists what is on disk with
//! validity, and `diff` summarizes what changed between two
//! generations. `serve --store` warm-starts from the newest valid
//! generation — no crawl, no retrain — and persists every later
//! publish.
//!
//! `watch` is the continuous-ingest daemon: it serves the store's
//! newest generation and then cycles poll → extend → retrain → publish
//! under supervision (`etap_serve::watch`), sealing each generation in
//! the store before hot-swapping it live. `ETAP_FAULTS` arms
//! deterministic fault injection for chaos testing (see DESIGN.md §10).
//!
//! Exit codes are classified for supervising shells / unit files:
//! 1 unclassified, 2 usage, 3 store corruption, 4 transient I/O.

use etap_repro::system::{driverfile, persist, rank, AliasResolver, EventIdentifier, TrainedDriver};
use etap_repro::{DriverSet, DriverSpec, Etap, EtapConfig, SalesDriver, SyntheticWeb, WebConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// CLI failure with the exit code a supervising shell or unit file
/// needs to tell *retryable* from *fatal* failures:
///
/// | code | meaning | systemd reaction |
/// |------|---------|------------------|
/// | 1 | unclassified error | operator judgment |
/// | 2 | bad arguments / usage | fatal, fix the invocation |
/// | 3 | store corruption | fatal, restore or re-publish |
/// | 4 | transient I/O | retryable, restart with backoff |
#[derive(Debug)]
enum CliError {
    /// Exit 1 — anything without a sharper classification.
    Other(String),
    /// Exit 2 — unknown command, missing/invalid flags, preconditions.
    Usage(String),
    /// Exit 3 — a generation failed checksum/manifest validation.
    Corrupt(String),
    /// Exit 4 — filesystem/network errors worth retrying.
    TransientIo(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            Self::Other(_) => 1,
            Self::Usage(_) => 2,
            Self::Corrupt(_) => 3,
            Self::TransientIo(_) => 4,
        }
    }

    fn message(&self) -> &str {
        match self {
            Self::Other(m) | Self::Usage(m) | Self::Corrupt(m) | Self::TransientIo(m) => m,
        }
    }
}

/// Formatted runtime failures default to the unclassified exit 1.
impl From<String> for CliError {
    fn from(m: String) -> Self {
        Self::Other(m)
    }
}

/// Static message strings in this binary are argument/precondition
/// errors ("--out <dir> is required", "store is empty") → exit 2.
impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        Self::Usage(m.to_string())
    }
}

/// Classify a raw filesystem error as retryable.
fn io_err(e: std::io::Error) -> CliError {
    CliError::TransientIo(e.to_string())
}

/// Classify a store error: I/O is retryable, a failed checksum or
/// manifest invariant is corruption.
fn store_err(e: etap_repro::serve::StoreError) -> CliError {
    use etap_repro::serve::StoreError;
    match e {
        StoreError::Io(io) => CliError::TransientIo(io.to_string()),
        StoreError::Codec(_) | StoreError::Invalid(_) => CliError::Corrupt(e.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = Opts::parse(&args[1..]);
    let result = match command.as_str() {
        "train" => cmd_train(&opts),
        "scan" => cmd_scan(&opts),
        "score" => cmd_score(&opts),
        "companies" => cmd_companies(&opts),
        "eval" => cmd_eval(&opts),
        "serve" => cmd_serve(&opts),
        "watch" => cmd_watch(&opts),
        "publish" => cmd_publish(&opts),
        "generations" => cmd_generations(&opts),
        "diff" => cmd_diff(&opts),
        "example-drivers" => cmd_example_drivers(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "\
etap-cli — automatic sales lead generation (ETAP, ICDE 2006 reproduction)

USAGE:
  etap-cli train --out <dir> [--docs N] [--seed N] [--driver SPEC] [--drivers FILE]
  etap-cli scan --models <dir> [--docs N] [--seed N] [--top K] [--time-weighted]
                [--drivers FILE]
  etap-cli score --model <file> --text <snippet>
  etap-cli companies --models <dir> [--docs N] [--seed N] [--top K] [--drivers FILE]
  etap-cli eval --models <dir> [--docs N] [--seed N] [--drivers FILE]
  etap-cli serve (--store <dir> | --models <dir>) [--addr HOST:PORT] [--docs N]
                 [--seed N] [--window N] [--drivers FILE]
  etap-cli watch --store <dir> [--models <dir>] [--addr HOST:PORT] [--docs N]
                 [--seed N] [--interval-ms N] [--cycles N] [--keep N] [--window N]
                 [--blend F] [--stage-timeout-ms N] [--degrade-after N]
                 [--drivers FILE]
  etap-cli publish --store <dir> [--models <dir>] [--docs N] [--seed N]
                   [--window N] [--extend] [--keep N] [--format v1|v2]
                   [--shards N] [--drivers FILE]
  etap-cli generations --store <dir>
  etap-cli diff --store <dir> [--from GEN] [--to GEN]
  etap-cli example-drivers [--out FILE]

--driver SPEC is all, a builtin shortcut (ma|cim|rev), a registered key,
or a comma-separated mix. --drivers FILE loads custom driver specs from
a DRIVERS v1 file (see `example-drivers` and README \"Custom drivers\").

exit codes: 0 ok, 1 error, 2 usage, 3 store corruption, 4 transient I/O

serve env overrides: ETAP_SERVE_ADDR, ETAP_SERVE_WORKERS, ETAP_SERVE_QUEUE,
ETAP_SERVE_DEADLINE_MS, ETAP_SERVE_MAX_BODY, ETAP_SERVE_KEEPALIVE,
ETAP_SERVE_STORE, ETAP_SERVE_STORE_KEEP (see README \"Serving\" and
\"Persistence\")
watch env overrides: ETAP_FAULTS, ETAP_FAULT_SEED (deterministic fault
injection; see README \"Continuous ingest\")";

/// Minimal `--flag value` / `--flag` parser.
struct Opts {
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(name) = args[i].strip_prefix("--") {
                let value = args.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            }
            i += 1;
        }
        Self { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn usize_or(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Load a `DRIVERS v1` file when `--drivers` is given — and do it
/// before anything else touches the registry, so custom driver ids
/// intern in file order on every run (the determinism contract behind
/// artifact byte-identity). Returns the loaded specs (empty without
/// the flag).
fn load_driver_file(opts: &Opts) -> Result<Vec<DriverSpec>, CliError> {
    match opts.get("drivers") {
        None => Ok(Vec::new()),
        Some(path) => {
            let specs = driverfile::load(Path::new(path))
                .map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
            eprintln!("loaded {} custom driver(s) from {path}", specs.len());
            Ok(specs)
        }
    }
}

/// Parse `--driver`: `all` (every registered driver, including ones a
/// `--drivers` file just loaded), the builtin shortcuts, any registered
/// key, or a comma-separated mix.
fn parse_drivers(spec: &str) -> Result<Vec<SalesDriver>, CliError> {
    if spec == "all" {
        return Ok(SalesDriver::registered());
    }
    spec.split(',')
        .map(|s| match s.trim() {
            "ma" => Ok(SalesDriver::MergersAcquisitions),
            "cim" => Ok(SalesDriver::ChangeInManagement),
            "rev" => Ok(SalesDriver::RevenueGrowth),
            other => other.parse::<SalesDriver>().map_err(|_| {
                CliError::Usage(format!(
                    "unknown driver {other:?} (use all|ma|cim|rev or a key registered via --drivers)"
                ))
            }),
        })
        .collect()
}

fn cmd_train(opts: &Opts) -> Result<(), CliError> {
    let out = PathBuf::from(opts.get("out").ok_or("--out <dir> is required")?);
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let custom = load_driver_file(opts)?;
    let docs = opts.usize_or("docs", 4_000);
    let seed = opts.usize_or("seed", 0xE7A9) as u64;
    let drivers = parse_drivers(opts.get("driver").unwrap_or("all"))?;

    eprintln!("generating {docs}-document web (seed {seed})…");
    let web = SyntheticWeb::generate(WebConfig {
        total_docs: docs,
        seed,
        drivers: DriverSet::all_registered(),
        ..WebConfig::default()
    });
    let mut config = EtapConfig::paper();
    // A driver trains from its file spec when one was loaded, and from
    // the builtin (or fallback) spec otherwise.
    config.drivers = drivers
        .iter()
        .map(|d| {
            custom
                .iter()
                .find(|s| s.driver == *d)
                .cloned()
                .unwrap_or_else(|| DriverSpec::builtin(*d))
        })
        .collect();
    config.training.negative_snippets = docs * 3 / 2;
    eprintln!("training {} driver(s)…", drivers.len());
    let trained = Etap::new(config).train(&web);
    for d in &trained.drivers {
        let path = out.join(format!("{}.model", d.spec.driver.id()));
        persist::save(d, &path).map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({} noisy positives → {} retained, {} features)",
            path.display(),
            d.report.noisy_positives,
            d.report.retained_positives,
            d.vectorizer.vocabulary().len()
        );
    }
    Ok(())
}

fn load_models(dir: &Path) -> Result<Vec<TrainedDriver>, CliError> {
    let mut models = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| CliError::TransientIo(format!("{}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "model"))
        .collect();
    paths.sort();
    for p in paths {
        models.push(persist::load(&p).map_err(|e| format!("{}: {e}", p.display()))?);
    }
    if models.is_empty() {
        return Err(CliError::Usage(format!("no .model files in {}", dir.display())));
    }
    Ok(models)
}

fn fresh_crawl(opts: &Opts) -> SyntheticWeb {
    let docs = opts.usize_or("docs", 300);
    let seed = opts.usize_or("seed", 7) as u64;
    eprintln!("crawling {docs} fresh documents (seed {seed})…");
    // All registered drivers (builtins only unless models or a
    // --drivers file registered more by now) get trigger genres in the
    // crawl; with no customs this is bit-identical to the default set.
    SyntheticWeb::generate(WebConfig {
        total_docs: docs,
        seed,
        drivers: DriverSet::all_registered(),
        ..WebConfig::default()
    })
}

fn cmd_scan(opts: &Opts) -> Result<(), CliError> {
    load_driver_file(opts)?;
    let models = load_models(Path::new(
        opts.get("models").ok_or("--models <dir> required")?,
    ))?;
    let crawl = fresh_crawl(opts);
    let top = opts.usize_or("top", 10);
    let identifier = EventIdentifier::new(3);
    let events = identifier.identify(&models, crawl.docs());
    eprintln!("{} trigger events flagged.", events.len());

    if opts.has("time-weighted") {
        let ranked = rank::rank_by_time_weighted_score(events, 365.0);
        for (i, (e, w)) in ranked.iter().take(top).enumerate() {
            println!(
                "{:>3}. [{:.3}×time={w:.3}] ({}) {}",
                i + 1,
                e.score,
                e.driver,
                e.snippet
            );
        }
    } else {
        let ranked = rank::rank_by_score(events);
        for (i, e) in ranked.iter().take(top).enumerate() {
            println!(
                "{:>3}. [{:.3}] ({}) {}",
                i + 1,
                e.score,
                e.driver,
                e.snippet
            );
        }
    }
    Ok(())
}

fn cmd_score(opts: &Opts) -> Result<(), CliError> {
    let model_path = PathBuf::from(opts.get("model").ok_or("--model <file> required")?);
    let text = opts.get("text").ok_or("--text <snippet> required")?;
    let trained = persist::load(&model_path).map_err(|e| e.to_string())?;
    let annotator = etap_repro::annotate::Annotator::new();
    let score = trained.score(&annotator.annotate(text));
    println!(
        "{:.4}\t{}\t{}",
        score,
        if score >= 0.5 { "TRIGGER" } else { "ignore" },
        trained.spec.driver
    );
    Ok(())
}

fn cmd_companies(opts: &Opts) -> Result<(), CliError> {
    load_driver_file(opts)?;
    let models = load_models(Path::new(
        opts.get("models").ok_or("--models <dir> required")?,
    ))?;
    let crawl = fresh_crawl(opts);
    let top = opts.usize_or("top", 10);
    let identifier = EventIdentifier::new(3);
    let events = identifier.identify(&models, crawl.docs());
    let mut resolver = AliasResolver::new();
    let companies = rank::rank_companies_resolved(&events, &mut resolver);
    println!("{:<32} {:>7} {:>7}", "company", "MRR", "events");
    for c in companies.iter().take(top) {
        println!("{:<32} {:>7.3} {:>7}", c.company, c.mrr, c.events);
    }
    Ok(())
}

fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    use etap_repro::serve::{GenerationStore, LeadSnapshot, ServeConfig};
    use std::sync::Arc;

    load_driver_file(opts)?;
    let mut config = ServeConfig::from_env();
    if let Some(addr) = opts.get("addr") {
        config.addr = addr.to_string();
    }
    if let Some(store_dir) = opts.get("store") {
        config.store = Some(PathBuf::from(store_dir));
    }

    // Warm start: with a store holding at least one valid generation,
    // serve that — no crawl, no model directory needed.
    let snapshot = match &config.store {
        Some(root) => {
            let store = GenerationStore::open(root).map_err(|e| e.to_string())?;
            match store.load_latest().map_err(|e| e.to_string())? {
                Some((snapshot, skipped)) => {
                    for (generation, reason) in &skipped {
                        eprintln!("skipping invalid generation {generation}: {reason}");
                    }
                    eprintln!(
                        "warm start from generation {} ({} events, {} companies)",
                        snapshot.generation,
                        snapshot.book.len(),
                        snapshot.book.companies_len()
                    );
                    Some(Arc::new(snapshot))
                }
                None => None,
            }
        }
        None => None,
    };

    let snapshot = match snapshot {
        Some(s) => s,
        None => {
            // Cold start: build generation 1 from trained models + a
            // fresh crawl (persisted by the server when a store is set).
            let models = load_models(Path::new(opts.get("models").ok_or(
                "--models <dir> required (store is empty or not configured)",
            )?))?;
            let window = opts.usize_or("window", 3);
            let trained = Arc::new(etap_repro::TrainedEtap::from_drivers(models, window));
            let crawl = fresh_crawl(opts);
            eprintln!("building lead snapshot (generation 1)…");
            let snapshot = Arc::new(LeadSnapshot::build(trained, crawl.docs(), 1));
            eprintln!(
                "snapshot ready: {} events, {} companies",
                snapshot.book.len(),
                snapshot.book.companies_len()
            );
            snapshot
        }
    };

    let server = etap_repro::serve::start(&config, snapshot).map_err(|e| e.to_string())?;
    // Machine-parsable on stdout: scripts extract the port from here.
    println!("listening on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Serve until the process is terminated.
    loop {
        std::thread::park();
    }
}

fn cmd_watch(opts: &Opts) -> Result<(), CliError> {
    use etap_repro::serve::{watch, GenerationStore, LeadSnapshot, ServeConfig, WatchConfig};
    use std::sync::Arc;
    use std::time::Duration;

    // Arm deterministic fault injection first so every later store /
    // corpus call runs under the configured chaos plan. A malformed
    // spec is an invocation error, not a runtime one.
    if let Some(registry) = etap_repro::runtime::fault::install_from_env()
        .map_err(CliError::Usage)?
    {
        eprintln!(
            "fault injection armed: {} (seed {:#x})",
            std::env::var("ETAP_FAULTS").unwrap_or_default(),
            registry.seed()
        );
    }

    load_driver_file(opts)?;
    let root = PathBuf::from(opts.get("store").ok_or("--store <dir> required")?);
    let keep = opts.usize_or("keep", 4).max(1);
    let store = GenerationStore::open(&root)
        .map_err(io_err)?
        .with_retention(keep);

    // Warm start from the newest sealed generation; cold-build
    // generation 1 otherwise. The cold build is sealed in the store
    // *before* serving so a crash at any later instant recovers it.
    let snapshot = match store.load_latest().map_err(io_err)? {
        Some((snapshot, skipped)) => {
            for (generation, reason) in &skipped {
                eprintln!("skipping invalid generation {generation}: {reason}");
            }
            eprintln!("warm start from generation {}", snapshot.generation);
            Arc::new(snapshot)
        }
        None => {
            let models = load_models(Path::new(
                opts.get("models")
                    .ok_or("--models <dir> required (store is empty)")?,
            ))?;
            let window = opts.usize_or("window", 3);
            let trained = Arc::new(etap_repro::TrainedEtap::from_drivers(models, window));
            let docs = opts.usize_or("docs", 80);
            let seed = opts.usize_or("seed", 0x011A_7C4) as u64;
            let crawl = SyntheticWeb::generate(WebConfig {
                seed: watch::poll_batch_seed(seed, 1),
                drivers: DriverSet::all_registered(),
                ..WebConfig::with_docs(docs)
            });
            eprintln!("cold start: building generation 1 from {docs} documents…");
            let snapshot = Arc::new(LeadSnapshot::build(trained, crawl.docs(), 1));
            store.publish(&snapshot).map_err(io_err)?;
            snapshot
        }
    };

    // The watch loop owns persistence, so the server runs storeless:
    // publish_snapshot is a pure hot-swap of the already-sealed
    // generation.
    let mut serve_config = ServeConfig::from_env();
    serve_config.store = None;
    if let Some(addr) = opts.get("addr") {
        serve_config.addr = addr.to_string();
    }
    let server = etap_repro::serve::start(&serve_config, snapshot).map_err(|e| e.to_string())?;
    // Machine-parsable on stdout: scripts extract the port from here.
    println!("listening on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let mut config = WatchConfig {
        interval: Duration::from_millis(opts.usize_or("interval-ms", 1_000) as u64),
        poll_docs: opts.usize_or("docs", 80),
        poll_seed: opts.usize_or("seed", 0x011A_7C4) as u64,
        drivers: DriverSet::all_registered(),
        ..WatchConfig::default()
    };
    if let Some(cycles) = opts.get("cycles") {
        let n: u64 = cycles.parse().map_err(|_| "bad --cycles value")?;
        config.cycles = Some(n);
    }
    if let Some(ms) = opts.get("stage-timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --stage-timeout-ms value")?;
        config.stage_timeout = Duration::from_millis(ms);
    }
    if let Some(n) = opts.get("degrade-after") {
        config.degrade_after = n.parse().map_err(|_| "bad --degrade-after value")?;
    }
    if let Some(blend) = opts.get("blend") {
        let b: f64 = blend.parse().map_err(|_| "bad --blend value")?;
        if !(0.0..=1.0).contains(&b) {
            return Err("--blend must be in [0, 1]".into());
        }
        config.prior_blend = b;
    }

    if config.cycles == Some(0) {
        // Serve-only: keep the warm-started generation up without
        // cycling (useful to inspect a store the daemon built).
        loop {
            std::thread::park();
        }
    }

    let report = watch::run(&server, &store, &config);
    eprintln!(
        "watch done: {} cycle(s), {} failed, {} retries, final generation {}{}",
        report.cycles,
        report.cycles_failed,
        report.retries,
        report.final_generation,
        if report.degraded { " [DEGRADED]" } else { "" }
    );
    if let Some(err) = &report.last_error {
        eprintln!("watch last error: {err}");
    }
    server.shutdown();
    if report.degraded {
        return Err(CliError::Other(format!(
            "watch ended degraded after {} failed cycle(s)",
            report.cycles_failed
        )));
    }
    Ok(())
}

fn open_store(opts: &Opts) -> Result<etap_repro::serve::GenerationStore, CliError> {
    let root = opts.get("store").ok_or("--store <dir> required")?;
    etap_repro::serve::GenerationStore::open(root).map_err(io_err)
}

fn cmd_publish(opts: &Opts) -> Result<(), CliError> {
    use etap_repro::serve::LeadSnapshot;
    use std::sync::Arc;

    load_driver_file(opts)?;
    let store = open_store(opts)?;
    // `--format v2` seals the book as sharded binary `LEADS v2`
    // (mmap'd, zero-copy at load); v1 text stays the default.
    let store = match opts.get("format") {
        None | Some("v1") | Some("text") => store,
        Some("v2") | Some("binary") => {
            let shards = opts.usize_or("shards", 16).max(1) as u32;
            store.with_leads_format(etap_repro::serve::LeadsFormat::Binary { shards })
        }
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown --format {other:?} (use v1|v2)"
            )))
        }
    };
    let keep = opts.usize_or("keep", 4);
    let newest_valid = store
        .load_latest()
        .map_err(|e| e.to_string())?
        .map(|(snapshot, _)| snapshot);
    let next_generation = store
        .generations()
        .map_err(|e| e.to_string())?
        .last()
        .copied()
        .unwrap_or(0)
        + 1;

    let snapshot = if opts.has("extend") {
        // Incremental: identify events only for the fresh documents and
        // merge them into the newest stored generation (bit-identical
        // to a full rebuild over the union — see DESIGN.md §9).
        let prev =
            newest_valid.ok_or("--extend needs an existing valid generation in the store")?;
        let crawl = fresh_crawl(opts);
        eprintln!(
            "extending generation {} with {} fresh documents…",
            prev.generation,
            crawl.docs().len()
        );
        LeadSnapshot::extend(&prev, crawl.docs(), next_generation, 0)
    } else {
        let models = load_models(Path::new(
            opts.get("models").ok_or("--models <dir> required")?,
        ))?;
        let window = opts.usize_or("window", 3);
        let trained = Arc::new(etap_repro::TrainedEtap::from_drivers(models, window));
        let crawl = fresh_crawl(opts);
        LeadSnapshot::build(trained, crawl.docs(), next_generation)
    };

    let outcome = store.publish(&snapshot).map_err(|e| e.to_string())?;
    let removed = store.prune(keep).map_err(|e| e.to_string())?;
    println!(
        "published generation {} ({} events, {} companies) to {}",
        snapshot.generation,
        snapshot.book.len(),
        snapshot.book.companies_len(),
        outcome.dir.display()
    );
    if outcome.files_linked > 0 {
        eprintln!(
            "incremental publish: {} file(s) written ({} bytes), {} linked unchanged",
            outcome.files_written, outcome.bytes_written, outcome.files_linked
        );
    }
    for generation in removed {
        eprintln!("pruned generation {generation}");
    }
    Ok(())
}

fn cmd_generations(opts: &Opts) -> Result<(), CliError> {
    let store = open_store(opts)?;
    let generations = store.generations().map_err(|e| e.to_string())?;
    if generations.is_empty() {
        println!("store {} is empty", store.root().display());
        return Ok(());
    }
    println!("{:<12} {:>8} {:>10}  status", "generation", "events", "companies");
    for generation in generations {
        match store.load(generation) {
            Ok(snapshot) => println!(
                "{generation:<12} {:>8} {:>10}  valid",
                snapshot.book.len(),
                snapshot.book.companies_len()
            ),
            Err(e) => println!("{generation:<12} {:>8} {:>10}  INVALID: {e}", "-", "-"),
        }
    }
    Ok(())
}

fn cmd_diff(opts: &Opts) -> Result<(), CliError> {
    let store = open_store(opts)?;
    let generations = store.generations().map_err(|e| e.to_string())?;
    let to = match opts.get("to") {
        Some(v) => v.parse::<u64>().map_err(|_| "bad --to value")?,
        None => *generations.last().ok_or("store is empty")?,
    };
    let from = match opts.get("from") {
        Some(v) => v.parse::<u64>().map_err(|_| "bad --from value")?,
        None => *generations
            .iter()
            .rev()
            .find(|&&g| g < to)
            .ok_or("no earlier generation to diff against (use --from)")?,
    };
    let older = store.load(from).map_err(store_err)?;
    let newer = store.load(to).map_err(store_err)?;

    // Events carry no identity beyond their content, so the diff is a
    // multiset difference over the full event value. `events_owned`
    // materializes mapped (v2) books, so v1 and v2 generations diff
    // uniformly.
    let older_events = older.book.events_owned();
    let newer_events = newer.book.events_owned();
    let mut remaining: Vec<&etap_repro::TriggerEvent> = older_events.iter().collect();
    let mut added = Vec::new();
    for event in &newer_events {
        match remaining.iter().position(|e| *e == event) {
            Some(i) => {
                remaining.swap_remove(i);
            }
            None => added.push(event),
        }
    }
    println!(
        "gen {from} → gen {to}: {} events → {} events (+{} / -{})",
        older.book.len(),
        newer.book.len(),
        added.len(),
        remaining.len()
    );
    for event in added.iter().take(opts.usize_or("top", 5)) {
        println!("+ [{:.3}] ({}) {}", event.score, event.driver, event.snippet);
    }
    for event in remaining.iter().take(opts.usize_or("top", 5)) {
        println!("- [{:.3}] ({}) {}", event.score, event.driver, event.snippet);
    }
    Ok(())
}

/// Emit the shipped example driver pack (funding rounds + executive
/// hires) as a checksummed `DRIVERS v1` file — the committed
/// `drivers/extra.drivers` is machine-written by this command, so its
/// checksum can never drift from the codec.
fn cmd_example_drivers(opts: &Opts) -> Result<(), CliError> {
    let text = driverfile::to_string(&driverfile::example_defs());
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(io_err)?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_eval(opts: &Opts) -> Result<(), CliError> {
    load_driver_file(opts)?;
    let models = load_models(Path::new(
        opts.get("models").ok_or("--models <dir> required")?,
    ))?;
    let docs = opts.usize_or("docs", 600);
    let seed = opts.usize_or("seed", 7) as u64;
    eprintln!("evaluating on a fresh {docs}-document web (seed {seed})…");
    let crawl = SyntheticWeb::generate(WebConfig {
        total_docs: docs,
        seed,
        drivers: DriverSet::all_registered(),
        ..WebConfig::default()
    });
    let identifier = EventIdentifier::new(3);
    let events = identifier.identify(&models, crawl.docs());

    println!(
        "{:<26} {:>9} {:>7} {:>7}",
        "driver", "precision", "recall", "events"
    );
    for trained in &models {
        let driver = trained.spec.driver;
        let mine: Vec<_> = events.iter().filter(|e| e.driver == driver).collect();
        let tp = mine
            .iter()
            .filter(|e| crawl.doc(e.doc_id).trigger_driver() == Some(driver))
            .count();
        let trigger_docs: Vec<usize> = crawl.trigger_docs(driver).map(|d| d.id).collect();
        let covered = trigger_docs
            .iter()
            .filter(|id| mine.iter().any(|e| e.doc_id == **id))
            .count();
        let precision = if mine.is_empty() {
            0.0
        } else {
            tp as f64 / mine.len() as f64
        };
        let recall = if trigger_docs.is_empty() {
            0.0
        } else {
            covered as f64 / trigger_docs.len() as f64
        };
        println!(
            "{:<26} {precision:>9.3} {recall:>7.3} {:>7}",
            driver.to_string(),
            mine.len()
        );
    }
    Ok(())
}
