//! `etap-cli` — drive the full ETAP pipeline from the command line.
//!
//! ```text
//! etap-cli train --out models/ [--docs 4000] [--seed 59305] [--driver all|ma|cim|rev]
//! etap-cli scan  --models models/ [--docs 300] [--seed 7] [--top 10] [--time-weighted]
//! etap-cli score --model models/<file>.model --text "IBM acquired Daksh..."
//! etap-cli companies --models models/ [--docs 300] [--seed 7] [--top 10]
//! etap-cli eval  --models models/ [--docs 600] [--seed 7]
//! etap-cli serve --models models/ [--addr 127.0.0.1:8787] [--docs 300] [--seed 7]
//! ```
//!
//! `train` persists one `.model` file per sales driver (text format, see
//! `etap::persist`); `scan`/`companies` generate a fresh synthetic crawl
//! and run the trained models over it; `serve` freezes a crawl into a
//! lead snapshot and serves it over HTTP (see `etap-serve`).

use etap_repro::system::{persist, rank, AliasResolver, EventIdentifier, TrainedDriver};
use etap_repro::{DriverSpec, Etap, EtapConfig, SalesDriver, SyntheticWeb, WebConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = Opts::parse(&args[1..]);
    let result = match command.as_str() {
        "train" => cmd_train(&opts),
        "scan" => cmd_scan(&opts),
        "score" => cmd_score(&opts),
        "companies" => cmd_companies(&opts),
        "eval" => cmd_eval(&opts),
        "serve" => cmd_serve(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
etap-cli — automatic sales lead generation (ETAP, ICDE 2006 reproduction)

USAGE:
  etap-cli train --out <dir> [--docs N] [--seed N] [--driver all|ma|cim|rev]
  etap-cli scan --models <dir> [--docs N] [--seed N] [--top K] [--time-weighted]
  etap-cli score --model <file> --text <snippet>
  etap-cli companies --models <dir> [--docs N] [--seed N] [--top K]
  etap-cli eval --models <dir> [--docs N] [--seed N]
  etap-cli serve --models <dir> [--addr HOST:PORT] [--docs N] [--seed N] [--window N]

serve env overrides: ETAP_SERVE_ADDR, ETAP_SERVE_WORKERS, ETAP_SERVE_QUEUE,
ETAP_SERVE_DEADLINE_MS, ETAP_SERVE_MAX_BODY (see README \"Serving\")";

/// Minimal `--flag value` / `--flag` parser.
struct Opts {
    flags: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(name) = args[i].strip_prefix("--") {
                let value = args.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            }
            i += 1;
        }
        Self { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn usize_or(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn parse_drivers(spec: &str) -> Result<Vec<SalesDriver>, String> {
    match spec {
        "all" => Ok(SalesDriver::ALL.to_vec()),
        "ma" => Ok(vec![SalesDriver::MergersAcquisitions]),
        "cim" => Ok(vec![SalesDriver::ChangeInManagement]),
        "rev" => Ok(vec![SalesDriver::RevenueGrowth]),
        other => Err(format!("unknown driver {other:?} (use all|ma|cim|rev)")),
    }
}

fn cmd_train(opts: &Opts) -> Result<(), String> {
    let out = PathBuf::from(opts.get("out").ok_or("--out <dir> is required")?);
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let docs = opts.usize_or("docs", 4_000);
    let seed = opts.usize_or("seed", 0xE7A9) as u64;
    let drivers = parse_drivers(opts.get("driver").unwrap_or("all"))?;

    eprintln!("generating {docs}-document web (seed {seed})…");
    let web = SyntheticWeb::generate(WebConfig {
        total_docs: docs,
        seed,
        ..WebConfig::default()
    });
    let mut config = EtapConfig::paper();
    config.drivers = drivers.iter().copied().map(DriverSpec::builtin).collect();
    config.training.negative_snippets = docs * 3 / 2;
    eprintln!("training {} driver(s)…", drivers.len());
    let trained = Etap::new(config).train(&web);
    for d in &trained.drivers {
        let path = out.join(format!("{}.model", d.spec.driver.id()));
        persist::save(d, &path).map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({} noisy positives → {} retained, {} features)",
            path.display(),
            d.report.noisy_positives,
            d.report.retained_positives,
            d.vectorizer.vocabulary().len()
        );
    }
    Ok(())
}

fn load_models(dir: &Path) -> Result<Vec<TrainedDriver>, String> {
    let mut models = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "model"))
        .collect();
    paths.sort();
    for p in paths {
        models.push(persist::load(&p).map_err(|e| format!("{}: {e}", p.display()))?);
    }
    if models.is_empty() {
        return Err(format!("no .model files in {}", dir.display()));
    }
    Ok(models)
}

fn fresh_crawl(opts: &Opts) -> SyntheticWeb {
    let docs = opts.usize_or("docs", 300);
    let seed = opts.usize_or("seed", 7) as u64;
    eprintln!("crawling {docs} fresh documents (seed {seed})…");
    SyntheticWeb::generate(WebConfig {
        total_docs: docs,
        seed,
        ..WebConfig::default()
    })
}

fn cmd_scan(opts: &Opts) -> Result<(), String> {
    let models = load_models(Path::new(
        opts.get("models").ok_or("--models <dir> required")?,
    ))?;
    let crawl = fresh_crawl(opts);
    let top = opts.usize_or("top", 10);
    let identifier = EventIdentifier::new(3);
    let events = identifier.identify(&models, crawl.docs());
    eprintln!("{} trigger events flagged.", events.len());

    if opts.has("time-weighted") {
        let ranked = rank::rank_by_time_weighted_score(events, 365.0);
        for (i, (e, w)) in ranked.iter().take(top).enumerate() {
            println!(
                "{:>3}. [{:.3}×time={w:.3}] ({}) {}",
                i + 1,
                e.score,
                e.driver,
                e.snippet
            );
        }
    } else {
        let ranked = rank::rank_by_score(events);
        for (i, e) in ranked.iter().take(top).enumerate() {
            println!(
                "{:>3}. [{:.3}] ({}) {}",
                i + 1,
                e.score,
                e.driver,
                e.snippet
            );
        }
    }
    Ok(())
}

fn cmd_score(opts: &Opts) -> Result<(), String> {
    let model_path = PathBuf::from(opts.get("model").ok_or("--model <file> required")?);
    let text = opts.get("text").ok_or("--text <snippet> required")?;
    let trained = persist::load(&model_path).map_err(|e| e.to_string())?;
    let annotator = etap_repro::annotate::Annotator::new();
    let score = trained.score(&annotator.annotate(text));
    println!(
        "{:.4}\t{}\t{}",
        score,
        if score >= 0.5 { "TRIGGER" } else { "ignore" },
        trained.spec.driver
    );
    Ok(())
}

fn cmd_companies(opts: &Opts) -> Result<(), String> {
    let models = load_models(Path::new(
        opts.get("models").ok_or("--models <dir> required")?,
    ))?;
    let crawl = fresh_crawl(opts);
    let top = opts.usize_or("top", 10);
    let identifier = EventIdentifier::new(3);
    let events = identifier.identify(&models, crawl.docs());
    let mut resolver = AliasResolver::new();
    let companies = rank::rank_companies_resolved(&events, &mut resolver);
    println!("{:<32} {:>7} {:>7}", "company", "MRR", "events");
    for c in companies.iter().take(top) {
        println!("{:<32} {:>7.3} {:>7}", c.company, c.mrr, c.events);
    }
    Ok(())
}

fn cmd_serve(opts: &Opts) -> Result<(), String> {
    use etap_repro::serve::{LeadSnapshot, ServeConfig};
    use std::sync::Arc;

    let models = load_models(Path::new(
        opts.get("models").ok_or("--models <dir> required")?,
    ))?;
    let window = opts.usize_or("window", 3);
    let trained = Arc::new(etap_repro::TrainedEtap::from_drivers(models, window));

    let crawl = fresh_crawl(opts);
    eprintln!("building lead snapshot (generation 1)…");
    let snapshot = Arc::new(LeadSnapshot::build(trained, crawl.docs(), 1));
    eprintln!(
        "snapshot ready: {} events, {} companies",
        snapshot.book.len(),
        snapshot.book.companies().len()
    );

    let mut config = ServeConfig::from_env();
    if let Some(addr) = opts.get("addr") {
        config.addr = addr.to_string();
    }
    let server = etap_repro::serve::start(&config, snapshot).map_err(|e| e.to_string())?;
    // Machine-parsable on stdout: scripts extract the port from here.
    println!("listening on http://{}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Serve until the process is terminated.
    loop {
        std::thread::park();
    }
}

fn cmd_eval(opts: &Opts) -> Result<(), String> {
    let models = load_models(Path::new(
        opts.get("models").ok_or("--models <dir> required")?,
    ))?;
    let docs = opts.usize_or("docs", 600);
    let seed = opts.usize_or("seed", 7) as u64;
    eprintln!("evaluating on a fresh {docs}-document web (seed {seed})…");
    let crawl = SyntheticWeb::generate(WebConfig {
        total_docs: docs,
        seed,
        ..WebConfig::default()
    });
    let identifier = EventIdentifier::new(3);
    let events = identifier.identify(&models, crawl.docs());

    println!(
        "{:<26} {:>9} {:>7} {:>7}",
        "driver", "precision", "recall", "events"
    );
    for trained in &models {
        let driver = trained.spec.driver;
        let mine: Vec<_> = events.iter().filter(|e| e.driver == driver).collect();
        let tp = mine
            .iter()
            .filter(|e| crawl.doc(e.doc_id).trigger_driver() == Some(driver))
            .count();
        let trigger_docs: Vec<usize> = crawl.trigger_docs(driver).map(|d| d.id).collect();
        let covered = trigger_docs
            .iter()
            .filter(|id| mine.iter().any(|e| e.doc_id == **id))
            .count();
        let precision = if mine.is_empty() {
            0.0
        } else {
            tp as f64 / mine.len() as f64
        };
        let recall = if trigger_docs.is_empty() {
            0.0
        } else {
            covered as f64 / trigger_docs.len() as f64
        };
        println!(
            "{:<26} {precision:>9.3} {recall:>7.3} {:>7}",
            driver.to_string(),
            mine.len()
        );
    }
    Ok(())
}
